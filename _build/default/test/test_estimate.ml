(* Section 3 equations, checked against hand-computed values on a small
   hand-built SLIF:

     a (process, ict 10 on tp) --c0: freq 3, 20b--> v (variable)
     a --c1: freq 2, 8b--> b (procedure, ict 5 on tp)
     b --c2: freq 1, 20b--> v
     a --c3: freq 4, 8b--> out1 (port)

   One 16-bit bus with ts=1us, td=5us.  All objects on cpu (tech tp):
     exectime(b) = 5 + 1*(ceil(20/16)*1 + 2)            = 9
     exectime(a) = 10 + 3*(2*1+2) + 2*(1*1+9) + 4*(1*5) = 62
   (the port access pays td because a port is never on the component). *)

let mk_node id name kind ict size =
  { Slif.Types.n_id = id; n_name = name; n_kind = kind; n_ict = ict; n_size = size }

let mk_chan id src dst freq mn mx bits tag kind =
  {
    Slif.Types.c_id = id;
    c_src = src;
    c_dst = dst;
    c_accfreq = freq;
    c_accfreq_min = mn;
    c_accfreq_max = mx;
    c_bits = bits;
    c_tag = tag;
    c_kind = kind;
  }

let fixture ?(tags = (None, None)) () =
  let tag0, tag1 = tags in
  let nodes =
    [|
      mk_node 0 "a"
        (Slif.Types.Behavior { is_process = true })
        [ ("tp", 10.0); ("ta", 4.0) ]
        [ ("tp", 100.0); ("ta", 900.0) ];
      mk_node 1 "v"
        (Slif.Types.Variable { storage_bits = 64; transfer_bits = 20 })
        [ ("tp", 2.0); ("ta", 1.0); ("tm", 3.0) ]
        [ ("tp", 8.0); ("ta", 512.0); ("tm", 4.0) ];
      mk_node 2 "b"
        (Slif.Types.Behavior { is_process = false })
        [ ("tp", 5.0); ("ta", 2.0) ]
        [ ("tp", 50.0); ("ta", 400.0) ];
    |]
  in
  let ports = [| { Slif.Types.pt_id = 0; pt_name = "out1"; pt_bits = 8; pt_dir = Slif.Types.Pout } |] in
  let chans =
    [|
      mk_chan 0 0 (Slif.Types.Dnode 1) 3.0 1.0 6.0 20 tag0 Slif.Types.Var_access;
      mk_chan 1 0 (Slif.Types.Dnode 2) 2.0 1.0 4.0 8 tag1 Slif.Types.Call;
      mk_chan 2 2 (Slif.Types.Dnode 1) 1.0 1.0 2.0 20 None Slif.Types.Var_access;
      mk_chan 3 0 (Slif.Types.Dport 0) 4.0 2.0 8.0 8 None Slif.Types.Port_access;
    |]
  in
  let procs =
    [|
      {
        Slif.Types.p_id = 0;
        p_name = "cpu";
        p_kind = Slif.Types.Standard;
        p_tech = "tp";
        p_size_constraint = Some 1000.0;
        p_io_constraint = Some 64;
      };
      {
        Slif.Types.p_id = 1;
        p_name = "hw";
        p_kind = Slif.Types.Custom;
        p_tech = "ta";
        p_size_constraint = None;
        p_io_constraint = Some 32;
      };
    |]
  in
  let mems =
    [| { Slif.Types.m_id = 0; m_name = "ram"; m_tech = "tm"; m_size_constraint = None } |]
  in
  let buses =
    [|
      {
        Slif.Types.b_id = 0;
        b_name = "bus";
        b_bitwidth = 16;
        b_ts_us = 1.0;
        b_td_us = 5.0;
        b_capacity_mbps = Some 2.0;
        b_ts_by_tech = [];
        b_td_by_pair = [];
      };
    |]
  in
  { Slif.Types.design_name = "fixture"; nodes; ports; chans; procs; mems; buses }

let all_on_cpu s =
  let part = Slif.Partition.create s in
  Array.iteri (fun i _ -> Slif.Partition.assign_node part ~node:i (Slif.Partition.Cproc 0)) s.Slif.Types.nodes;
  Slif.Partition.assign_all_chans part ~bus:0;
  part

let estimator ?mode ?concurrency ?recursion_depth s part =
  Slif.Estimate.create ?mode ?concurrency ?recursion_depth (Slif.Graph.make s) part

let checkf = Alcotest.(check (float 1e-9))

let test_exectime_same_component () =
  let s = fixture () in
  let est = estimator s (all_on_cpu s) in
  checkf "exectime(b)" 9.0 (Slif.Estimate.exectime_us est 2);
  checkf "exectime(a)" 62.0 (Slif.Estimate.exectime_us est 0)

let test_exectime_cross_component () =
  (* Move v to the memory: every access to it now pays td=5 per transfer
     and v's ict on tm (3.0):
       exectime(b) = 5 + 1*(2*5+3)           = 18
       exectime(a) = 10 + 3*13 + 2*(1+18) + 20 = 107 *)
  let s = fixture () in
  let part = all_on_cpu s in
  Slif.Partition.assign_node part ~node:1 (Slif.Partition.Cmem 0);
  let est = estimator s part in
  checkf "exectime(b) split" 18.0 (Slif.Estimate.exectime_us est 2);
  checkf "exectime(a) split" 107.0 (Slif.Estimate.exectime_us est 0)

let test_exectime_variable_is_its_ict () =
  let s = fixture () in
  let est = estimator s (all_on_cpu s) in
  checkf "exectime(v) = access ict" 2.0 (Slif.Estimate.exectime_us est 1)

let test_transfer_time () =
  let s = fixture () in
  let est = estimator s (all_on_cpu s) in
  (* 20 bits over 16 wires: two transfers at ts. *)
  checkf "c0 transfer" 2.0 (Slif.Estimate.transfer_time_us est s.Slif.Types.chans.(0));
  (* Port destination is off-component: td. *)
  checkf "c3 transfer" 5.0 (Slif.Estimate.transfer_time_us est s.Slif.Types.chans.(3))

let test_modes () =
  let s = fixture () in
  let part = all_on_cpu s in
  let avg = Slif.Estimate.exectime_us (estimator s part) 0 in
  let mn = Slif.Estimate.exectime_us (estimator ~mode:Slif.Estimate.Min s part) 0 in
  let mx = Slif.Estimate.exectime_us (estimator ~mode:Slif.Estimate.Max s part) 0 in
  Alcotest.(check bool) "min <= avg" true (mn <= avg);
  Alcotest.(check bool) "avg <= max" true (avg <= mx);
  (* min: 10 + 1*4 + 1*(1 + (5+1*4)) + 2*5 = 34 *)
  checkf "min exact" 34.0 mn

let test_concurrency_tags () =
  (* Tag c0 and c1 together: their costs (12 and 20) overlap, so a's
     communication is max(12,20) + 20 (untagged port) = 40. *)
  let s = fixture ~tags:(Some 1, Some 1) () in
  let part = all_on_cpu s in
  let seq = Slif.Estimate.exectime_us (estimator s part) 0 in
  let conc = Slif.Estimate.exectime_us (estimator ~concurrency:true s part) 0 in
  checkf "sequential unchanged" 62.0 seq;
  checkf "concurrent overlaps tagged channels" 50.0 conc

let test_bitrate () =
  let s = fixture () in
  let est = estimator s (all_on_cpu s) in
  (* ChanBitrate(c0) = 3*20/62. *)
  checkf "chan bitrate" (60.0 /. 62.0)
    (Slif.Estimate.chan_bitrate_mbps est s.Slif.Types.chans.(0));
  let expected_bus =
    (60.0 /. 62.0) +. (16.0 /. 62.0) +. (20.0 /. 9.0) +. (32.0 /. 62.0)
  in
  checkf "bus bitrate is the sum" expected_bus (Slif.Estimate.bus_bitrate_mbps est 0);
  checkf "capacity-limited clips at 2.0" 2.0
    (Slif.Estimate.bus_bitrate_capacity_limited_mbps est 0)

let test_size () =
  let s = fixture () in
  let part = all_on_cpu s in
  let est = estimator s part in
  checkf "size(cpu) = 100+8+50" 158.0 (Slif.Estimate.size est (Slif.Partition.Cproc 0));
  checkf "size(hw) empty" 0.0 (Slif.Estimate.size est (Slif.Partition.Cproc 1));
  Slif.Partition.assign_node part ~node:1 (Slif.Partition.Cmem 0);
  let est = estimator s part in
  checkf "size(cpu) after move" 150.0 (Slif.Estimate.size est (Slif.Partition.Cproc 0));
  checkf "size(ram) = v in words" 4.0 (Slif.Estimate.size est (Slif.Partition.Cmem 0))

let test_io_pins () =
  let s = fixture () in
  let part = all_on_cpu s in
  let est = estimator s part in
  (* Only the port channel crosses cpu's boundary; it rides the 16-bit bus. *)
  Alcotest.(check int) "cpu pins" 16 (Slif.Estimate.io_pins est (Slif.Partition.Cproc 0));
  Alcotest.(check int) "hw pins (no members)" 0
    (Slif.Estimate.io_pins est (Slif.Partition.Cproc 1));
  Alcotest.(check int) "one cut channel" 1
    (List.length (Slif.Estimate.cut_chans est (Slif.Partition.Cproc 0)));
  (* Moving b to hw cuts a->b and b->v as well, but the pin count stays at
     the single shared bus's width. *)
  Slif.Partition.assign_node part ~node:2 (Slif.Partition.Cproc 1);
  let est = estimator s part in
  Alcotest.(check int) "hw pins after move" 16 (Slif.Estimate.io_pins est (Slif.Partition.Cproc 1));
  Alcotest.(check int) "three cut channels for cpu" 3
    (List.length (Slif.Estimate.cut_chans est (Slif.Partition.Cproc 0)))

let test_missing_weight_rejected () =
  let s = fixture () in
  let part = all_on_cpu s in
  (* Behavior b has no weight for the memory technology. *)
  Slif.Partition.assign_node part ~node:2 (Slif.Partition.Cmem 0);
  let est = estimator s part in
  match Slif.Estimate.exectime_us est 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for missing weight"

let test_partial_partition_rejected () =
  let s = fixture () in
  let part = Slif.Partition.create s in
  let est = estimator s part in
  match Slif.Estimate.exectime_us est 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for partial partition"

let recursive_fixture () =
  let s = fixture () in
  (* Add a back-call b -> a, closing a cycle. *)
  let chans =
    Array.append s.Slif.Types.chans
      [| mk_chan 4 2 (Slif.Types.Dnode 0) 1.0 1.0 1.0 8 None Slif.Types.Call |]
  in
  { s with Slif.Types.chans }

let test_recursion_detected () =
  let s = recursive_fixture () in
  let est = estimator s (all_on_cpu s) in
  match Slif.Estimate.exectime_us est 0 with
  | exception Slif.Estimate.Recursive_specification _ -> ()
  | _ -> Alcotest.fail "expected Recursive_specification"

let test_recursion_unrolled () =
  let s = recursive_fixture () in
  let est = estimator ~recursion_depth:3 s (all_on_cpu s) in
  let t = Slif.Estimate.exectime_us est 0 in
  Alcotest.(check bool) "finite and positive" true (t > 0.0 && Float.is_finite t);
  let deeper = Slif.Estimate.exectime_us (estimator ~recursion_depth:6 s (all_on_cpu s)) 0 in
  Alcotest.(check bool) "more unrolling, more time" true (deeper > t)

let test_per_tech_bus_timing () =
  (* The paper's "more extensive set of annotations": a ts per technology
     and a td per technology pair override the bus defaults. *)
  let s = fixture () in
  let buses =
    Array.map
      (fun b ->
        {
          b with
          Slif.Types.b_ts_by_tech = [ ("tp", 0.5) ];
          b_td_by_pair = [ (("tp", "tm"), 10.0) ];
        })
      s.Slif.Types.buses
  in
  let s = { s with Slif.Types.buses } in
  let part = all_on_cpu s in
  let est = estimator s part in
  (* Same-component transfers on tech tp now cost 0.5 instead of 1.0:
     exectime(b) = 5 + 1*(2*0.5 + 2) = 8. *)
  checkf "ts override" 8.0 (Slif.Estimate.exectime_us est 2);
  (* Move v to memory: the (tp, tm) pair costs 10 instead of td=5:
     exectime(b) = 5 + 1*(2*10 + 3) = 28. *)
  Slif.Partition.assign_node part ~node:1 (Slif.Partition.Cmem 0);
  let est = estimator s part in
  checkf "td pair override" 28.0 (Slif.Estimate.exectime_us est 2);
  (* The pair is unordered: (tm, tp) resolves identically.  Port accesses
     keep the default td. *)
  checkf "port keeps default td" 5.0
    (Slif.Estimate.transfer_time_us est s.Slif.Types.chans.(3))

let test_per_tech_timing_roundtrips () =
  let s = fixture () in
  let buses =
    Array.map
      (fun b ->
        {
          b with
          Slif.Types.b_ts_by_tech = [ ("tp", 0.5); ("ta", 0.25) ];
          b_td_by_pair = [ (("tp", "ta"), 3.0); (("tp", "tm"), 10.0) ];
        })
      s.Slif.Types.buses
  in
  let s = { s with Slif.Types.buses } in
  Alcotest.(check bool) "text round-trip with bus timing tables" true
    (Slif.Text.of_string (Slif.Text.to_string s) = s)

let test_contention_no_capacity_is_plain () =
  let s = fixture () in
  let buses = Array.map (fun b -> { b with Slif.Types.b_capacity_mbps = None }) s.Slif.Types.buses in
  let s = { s with Slif.Types.buses } in
  let est = estimator s (all_on_cpu s) in
  checkf "no capacity, factor 1" 62.0 (Slif.Estimate.exectime_contended_us est 0);
  Alcotest.(check (array (float 1e-9))) "unit factors" [| 1.0 |]
    (Slif.Estimate.bus_slowdowns est)

let test_contention_slows_overcommitted_bus () =
  (* The fixture's bus is capped at 2.0 Mb/s but demand is ~3.96: the
     contended exectime must exceed the plain one, and the slowdown must
     push residual demand to (or under) roughly the capacity. *)
  let s = fixture () in
  let est = estimator s (all_on_cpu s) in
  let plain = Slif.Estimate.exectime_us est 0 in
  let contended = Slif.Estimate.exectime_contended_us est 0 in
  Alcotest.(check bool) "contention slows execution" true (contended > plain);
  let factors = Slif.Estimate.bus_slowdowns est in
  Alcotest.(check bool) "factor exceeds 1" true (factors.(0) > 1.0)

let test_contention_within_capacity_unchanged () =
  let s = fixture () in
  let buses =
    Array.map (fun b -> { b with Slif.Types.b_capacity_mbps = Some 1e9 }) s.Slif.Types.buses
  in
  let s = { s with Slif.Types.buses } in
  let est = estimator s (all_on_cpu s) in
  checkf "huge capacity leaves times unchanged" 62.0
    (Slif.Estimate.exectime_contended_us est 0)

let test_memoization () =
  let s = fixture () in
  let est = estimator s (all_on_cpu s) in
  ignore (Slif.Estimate.exectime_us est 0);
  let q1 = Slif.Estimate.stats_queries est in
  ignore (Slif.Estimate.exectime_us est 0);
  Alcotest.(check bool) "second query hits cache" true (Slif.Estimate.stats_cache_hits est > 0);
  Alcotest.(check int) "one more query" (q1 + 1) (Slif.Estimate.stats_queries est)

let test_cache_invalidation_on_move () =
  let s = fixture () in
  let part = all_on_cpu s in
  let est = estimator s part in
  checkf "before" 62.0 (Slif.Estimate.exectime_us est 0);
  Slif.Partition.assign_node part ~node:1 (Slif.Partition.Cmem 0);
  (* No explicit invalidation: the version check must catch it. *)
  checkf "after move (auto-invalidated)" 107.0 (Slif.Estimate.exectime_us est 0)

let test_incremental_invalidation_matches_full () =
  let s = fixture () in
  let part = all_on_cpu s in
  let est = estimator s part in
  ignore (Slif.Estimate.exectime_us est 0);
  Slif.Partition.assign_node part ~node:1 (Slif.Partition.Cmem 0);
  Slif.Estimate.note_node_moved est 1;
  let incr = Slif.Estimate.exectime_us est 0 in
  let fresh = Slif.Estimate.exectime_us (estimator s part) 0 in
  checkf "incremental equals fresh" fresh incr

let suite =
  [
    Alcotest.test_case "eq.1 same-component exectime" `Quick test_exectime_same_component;
    Alcotest.test_case "eq.1 cross-component exectime" `Quick test_exectime_cross_component;
    Alcotest.test_case "variable exectime is its ict" `Quick test_exectime_variable_is_its_ict;
    Alcotest.test_case "bus transfer time" `Quick test_transfer_time;
    Alcotest.test_case "min/avg/max modes" `Quick test_modes;
    Alcotest.test_case "concurrency tags overlap" `Quick test_concurrency_tags;
    Alcotest.test_case "eq.2-3 bitrates" `Quick test_bitrate;
    Alcotest.test_case "eq.4-5 sizes" `Quick test_size;
    Alcotest.test_case "eq.6 io pins" `Quick test_io_pins;
    Alcotest.test_case "missing weight rejected" `Quick test_missing_weight_rejected;
    Alcotest.test_case "partial partition rejected" `Quick test_partial_partition_rejected;
    Alcotest.test_case "recursion detected" `Quick test_recursion_detected;
    Alcotest.test_case "recursion unrolled on request" `Quick test_recursion_unrolled;
    Alcotest.test_case "per-technology bus timing" `Quick test_per_tech_bus_timing;
    Alcotest.test_case "bus timing tables round-trip" `Quick test_per_tech_timing_roundtrips;
    Alcotest.test_case "contention: no capacity" `Quick test_contention_no_capacity_is_plain;
    Alcotest.test_case "contention slows saturated bus" `Quick test_contention_slows_overcommitted_bus;
    Alcotest.test_case "contention: ample capacity" `Quick test_contention_within_capacity_unchanged;
    Alcotest.test_case "memoization" `Quick test_memoization;
    Alcotest.test_case "stale cache auto-invalidates" `Quick test_cache_invalidation_on_move;
    Alcotest.test_case "incremental invalidation correct" `Quick test_incremental_invalidation_matches_full;
  ]
