(* Pareto-front extraction over the time/area trade-off. *)

let graph_of_fuzzy =
  lazy
    (let s =
       Specsyn.Alloc.apply (Lazy.force Helpers.fuzzy_slif) (Specsyn.Alloc.proc_asic ())
     in
     Slif.Graph.make s)

let mk_point t hw =
  {
    Specsyn.Pareto.part = Specsyn.Search.seed_partition (Slif.Graph.slif (Lazy.force graph_of_fuzzy));
    worst_exectime_us = t;
    hw_gates = hw;
    sw_bytes = 0.0;
    weight_time = 1.0;
  }

let test_dominated () =
  let a = mk_point 100.0 5000.0 in
  let faster_smaller = mk_point 50.0 4000.0 in
  let faster_bigger = mk_point 50.0 9000.0 in
  Alcotest.(check bool) "strictly better dominates" true
    (Specsyn.Pareto.dominated a faster_smaller);
  Alcotest.(check bool) "trade-off does not dominate" false
    (Specsyn.Pareto.dominated a faster_bigger);
  Alcotest.(check bool) "equal does not dominate" false (Specsyn.Pareto.dominated a a)

let test_front_filters () =
  let pts =
    [ mk_point 100.0 1000.0; mk_point 50.0 5000.0; mk_point 120.0 1500.0; mk_point 75.0 2000.0 ]
  in
  let front = Specsyn.Pareto.front pts in
  (* (120,1500) is dominated by (100,1000); the rest trade off. *)
  Alcotest.(check int) "three survivors" 3 (List.length front);
  let times = List.map (fun p -> p.Specsyn.Pareto.worst_exectime_us) front in
  Alcotest.(check (list (float 1e-9))) "sorted by time" [ 50.0; 75.0; 100.0 ] times

let test_score_measures () =
  let graph = Lazy.force graph_of_fuzzy in
  let part = Specsyn.Search.seed_partition (Slif.Graph.slif graph) in
  let p = Specsyn.Pareto.score graph part ~weight_time:1.0 in
  Alcotest.(check bool) "time positive" true (p.Specsyn.Pareto.worst_exectime_us > 0.0);
  (* All-software seed: no custom hardware occupied. *)
  Alcotest.(check (float 1e-9)) "no hw gates on seed" 0.0 p.Specsyn.Pareto.hw_gates;
  Alcotest.(check bool) "software has bytes" true (p.Specsyn.Pareto.sw_bytes > 0.0)

let test_sweep_produces_trade_off () =
  let graph = Lazy.force graph_of_fuzzy in
  let front = Specsyn.Pareto.sweep ~steps_per_point:150 graph in
  Alcotest.(check bool) "non-empty front" true (front <> []);
  (* Non-dominated and sorted: times strictly increase while gates
     strictly decrease along the front. *)
  let rec check_monotone = function
    | a :: b :: rest ->
        Alcotest.(check bool) "time increases" true
          (b.Specsyn.Pareto.worst_exectime_us > a.Specsyn.Pareto.worst_exectime_us);
        Alcotest.(check bool) "gates decrease" true
          (b.Specsyn.Pareto.hw_gates < a.Specsyn.Pareto.hw_gates);
        check_monotone (b :: rest)
    | _ -> ()
  in
  check_monotone front;
  List.iter
    (fun p ->
      Alcotest.(check bool) "every front point is a proper partition" true
        (Slif.Validate.is_proper p.Specsyn.Pareto.part))
    front

let test_sweep_deterministic () =
  let graph = Lazy.force graph_of_fuzzy in
  let f1 = Specsyn.Pareto.sweep ~steps_per_point:100 graph in
  let f2 = Specsyn.Pareto.sweep ~steps_per_point:100 graph in
  Alcotest.(check (list (float 1e-9))) "same front each run"
    (List.map (fun p -> p.Specsyn.Pareto.worst_exectime_us) f1)
    (List.map (fun p -> p.Specsyn.Pareto.worst_exectime_us) f2)

let suite =
  [
    Alcotest.test_case "domination" `Quick test_dominated;
    Alcotest.test_case "front filtering" `Quick test_front_filters;
    Alcotest.test_case "scoring" `Quick test_score_measures;
    Alcotest.test_case "sweep yields a trade-off curve" `Quick test_sweep_produces_trade_off;
    Alcotest.test_case "sweep deterministic" `Quick test_sweep_deterministic;
  ]
