(* Comparator formats: granularity ordering and rough synthesis. *)

let tiny_design = lazy (Vhdl.Parser.parse Helpers.tiny_source)

let test_cdfg_counts_small () =
  let g = Cdfg.Graph.of_design (Lazy.force tiny_design) in
  Alcotest.(check bool) "has nodes" true (Cdfg.Graph.node_count g > 5);
  Alcotest.(check bool) "has edges" true (Cdfg.Graph.edge_count g > 4)

let test_cdfg_op_nodes () =
  let g = Cdfg.Graph.of_design (Lazy.force tiny_design) in
  (* helper computes v + 1: at least one Add op. *)
  let ops = Cdfg.Graph.op_nodes g in
  Alcotest.(check bool) "has an add" true
    (List.exists
       (fun (n : Cdfg.Graph.node) -> n.kind = Cdfg.Graph.Op Tech.Optype.Add)
       ops)

let test_cdfg_data_preds () =
  let g = Cdfg.Graph.of_design (Lazy.force tiny_design) in
  let ops = Cdfg.Graph.op_nodes g in
  List.iter
    (fun (n : Cdfg.Graph.node) ->
      match n.kind with
      | Cdfg.Graph.Op _ ->
          let preds = Cdfg.Graph.data_predecessors g n.id in
          Alcotest.(check bool) "op has operands" true (preds <> []);
          List.iter
            (fun p -> Alcotest.(check bool) "topological ids" true (p < n.id))
            preds
      | _ -> ())
    ops

let granularity_ordering (spec : Specs.Registry.spec) =
  let design = Vhdl.Parser.parse spec.source in
  let sem = Vhdl.Sem.build design in
  let slif_stats = Slif.Stats.of_slif (Slif.Build.build sem) in
  let add = Addfmt.Add.of_design design in
  let cdfg = Cdfg.Graph.of_design design in
  let s = slif_stats.Slif.Stats.bv in
  let a = Addfmt.Add.node_count add in
  let c = Cdfg.Graph.node_count cdfg in
  Alcotest.(check bool)
    (Printf.sprintf "%s: SLIF(%d) < ADD(%d) < CDFG(%d)" spec.spec_name s a c)
    true
    (s < a && a < c);
  (* The paper's headline ratio: an order of magnitude or more. *)
  Alcotest.(check bool)
    (spec.spec_name ^ ": CDFG at least 5x SLIF") true
    (c >= 5 * s)

let test_granularity_all_specs () = List.iter granularity_ordering Specs.Registry.all

let test_synthesis_produces_area_and_schedule () =
  let g = Cdfg.Graph.of_design (Vhdl.Parser.parse Specs.Spec_fuzzy.text) in
  let r = Cdfg.Synthest.rough_synthesis Tech.Parts.asic_gal g in
  Alcotest.(check bool) "positive area" true (r.Cdfg.Synthest.gates > 0.0);
  Alcotest.(check bool) "positive schedule" true (r.Cdfg.Synthest.csteps > 0);
  Alcotest.(check bool) "some FUs allocated" true (r.Cdfg.Synthest.fu_used <> [])

let test_synthesis_subset_smaller () =
  let g = Cdfg.Graph.of_design (Vhdl.Parser.parse Specs.Spec_fuzzy.text) in
  let full = Cdfg.Synthest.rough_synthesis Tech.Parts.asic_gal g in
  let partial =
    Cdfg.Synthest.rough_synthesis
      ~belongs:(fun n -> n.Cdfg.Graph.behavior = "evaluate_rule")
      Tech.Parts.asic_gal g
  in
  Alcotest.(check bool) "subset costs less area" true
    (partial.Cdfg.Synthest.gates < full.Cdfg.Synthest.gates);
  Alcotest.(check bool) "subset schedules shorter" true
    (partial.Cdfg.Synthest.csteps < full.Cdfg.Synthest.csteps)

let test_synthesis_sharing_beats_naive_sum () =
  (* The Results-section argument: naively summing per-op FU areas ignores
     sharing, so the bound synthesis must come out well below it. *)
  let g = Cdfg.Graph.of_design (Vhdl.Parser.parse Specs.Spec_fuzzy.text) in
  let r = Cdfg.Synthest.rough_synthesis Tech.Parts.asic_gal g in
  let naive =
    List.fold_left
      (fun acc (n : Cdfg.Graph.node) ->
        match n.kind with
        | Cdfg.Graph.Op op ->
            acc +. (Tech.Parts.asic_gal.Tech.Asic_model.fu_of op).Tech.Asic_model.area_gates
        | _ -> acc)
      0.0
      (Array.to_list g.Cdfg.Graph.nodes)
  in
  Alcotest.(check bool) "shared FU area below naive sum" true
    (r.Cdfg.Synthest.gates < naive *. 2.0);
  let fu_area =
    List.fold_left
      (fun acc (op, d) ->
        acc
        +. float_of_int d
           *. (Tech.Parts.asic_gal.Tech.Asic_model.fu_of op).Tech.Asic_model.area_gates)
      0.0 r.Cdfg.Synthest.fu_used
  in
  Alcotest.(check bool) "FU area alone far below naive sum" true (fu_area < naive /. 2.0)

let test_add_shares_access_nodes () =
  let d =
    Vhdl.Parser.parse
      {|entity e is end;
architecture a of e is
  shared variable x : integer;
begin
  p: process
  begin
    x := x + 1;
    x := x + 2;
    wait for 1 us;
  end process;
end;|}
  in
  let add = Addfmt.Add.of_design d in
  let access_count =
    Array.to_list add.Addfmt.Add.nodes
    |> List.filter (fun (n : Addfmt.Add.node) ->
           match n.kind with Addfmt.Add.Access "x" -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "one shared access point for x" 1 access_count;
  let decision_count =
    Array.to_list add.Addfmt.Add.nodes
    |> List.filter (fun (n : Addfmt.Add.node) ->
           match n.kind with Addfmt.Add.Decision "x" -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "one decision per assignment" 2 decision_count

let suite =
  [
    Alcotest.test_case "cdfg counts on a small design" `Quick test_cdfg_counts_small;
    Alcotest.test_case "cdfg op nodes" `Quick test_cdfg_op_nodes;
    Alcotest.test_case "cdfg data predecessors topological" `Quick test_cdfg_data_preds;
    Alcotest.test_case "granularity ordering on all specs" `Quick test_granularity_all_specs;
    Alcotest.test_case "rough synthesis output" `Quick test_synthesis_produces_area_and_schedule;
    Alcotest.test_case "rough synthesis on a subset" `Quick test_synthesis_subset_smaller;
    Alcotest.test_case "FU sharing beats naive summing" `Quick test_synthesis_sharing_beats_naive_sum;
    Alcotest.test_case "ADD shares access nodes" `Quick test_add_shares_access_nodes;
  ]
