(* Recording and replaying partitioning decisions. *)

let setup () =
  let slif = Lazy.force Helpers.fuzzy_slif in
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  (* A non-trivial decision: datapath on the ASIC. *)
  List.iter
    (fun name ->
      match Slif.Types.node_by_name s name with
      | Some n -> Slif.Partition.assign_node part ~node:n.n_id (Slif.Partition.Cproc 1)
      | None -> ())
    [ "evaluate_rule"; "convolve"; "mr1"; "mr2" ];
  (s, graph, part)

let test_roundtrip_assignments () =
  let s, _, part = setup () in
  let text = Slif.Decision.to_string ~note:"datapath on the gate array" part in
  let part' = Slif.Decision.of_string s text in
  Array.iter
    (fun (n : Slif.Types.node) ->
      Alcotest.(check bool) (n.n_name ^ " assignment preserved") true
        (Slif.Partition.comp_of part n.n_id = Slif.Partition.comp_of part' n.n_id))
    s.Slif.Types.nodes;
  Array.iter
    (fun (c : Slif.Types.channel) ->
      Alcotest.(check bool) "channel assignment preserved" true
        (Slif.Partition.bus_of part c.c_id = Slif.Partition.bus_of part' c.c_id))
    s.Slif.Types.chans

let test_roundtrip_metrics_identical () =
  let s, graph, part = setup () in
  let part' = Slif.Decision.of_string s (Slif.Decision.to_string part) in
  let est = Slif.Estimate.create graph part in
  let est' = Slif.Estimate.create graph part' in
  let main =
    match Slif.Types.node_by_name s "fuzzymain" with Some n -> n.n_id | None -> assert false
  in
  Alcotest.(check (float 1e-9)) "same exectime"
    (Slif.Estimate.exectime_us est main)
    (Slif.Estimate.exectime_us est' main);
  Alcotest.(check (float 1e-9)) "same asic size"
    (Slif.Estimate.size est (Slif.Partition.Cproc 1))
    (Slif.Estimate.size est' (Slif.Partition.Cproc 1))

let test_note_preserved () =
  let _, _, part = setup () in
  let text = Slif.Decision.to_string ~note:"try the cheaper fpga next" part in
  Alcotest.(check (option string)) "note" (Some "try the cheaper fpga next")
    (Slif.Decision.note text);
  Alcotest.(check (option string)) "no note" None
    (Slif.Decision.note (Slif.Decision.to_string part))

let test_survives_rebuild () =
  (* The point of name-based identity: a decision recorded against one
     build applies to a fresh build of the same source. *)
  let s, _, part = setup () in
  let text = Slif.Decision.to_string part in
  let fresh =
    let sem = Vhdl.Sem.build (Vhdl.Parser.parse Specs.Spec_fuzzy.text) in
    Specsyn.Alloc.apply
      (Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem))
      (Specsyn.Alloc.proc_asic ())
  in
  let part' = Slif.Decision.of_string fresh text in
  Alcotest.(check bool) "total on the fresh build" true (Slif.Partition.is_total part');
  match Slif.Types.node_by_name fresh "convolve" with
  | Some n ->
      Alcotest.(check bool) "convolve still on the asic" true
        (Slif.Partition.comp_of part' n.n_id = Some (Slif.Partition.Cproc 1));
      ignore (s, part)
  | None -> Alcotest.fail "convolve missing"

let test_wrong_design_rejected () =
  let s, _, _ = setup () in
  match Slif.Decision.of_string s "decision some_other_chip\n" with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions the mismatch" true (String.length msg > 0)
  | _ -> Alcotest.fail "design mismatch accepted"

let test_unknown_names_rejected () =
  let s, _, _ = setup () in
  (match Slif.Decision.of_string s "map nonexistent proc cpu\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown node accepted");
  (match Slif.Decision.of_string s "map fuzzymain proc warp_core\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown component accepted");
  match Slif.Decision.of_string s "chan fuzzymain node nowhere call sysbus\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown channel accepted"

let test_partial_decisions_allowed () =
  let s, _, _ = setup () in
  let part = Slif.Decision.of_string s "map fuzzymain proc cpu\n" in
  Alcotest.(check bool) "one node assigned" true
    (Slif.Partition.comp_of part 0 <> None || Slif.Partition.comp_of part 1 <> None);
  Alcotest.(check bool) "not total" false (Slif.Partition.is_total part)

let suite =
  [
    Alcotest.test_case "assignments round-trip" `Quick test_roundtrip_assignments;
    Alcotest.test_case "metrics identical after replay" `Quick test_roundtrip_metrics_identical;
    Alcotest.test_case "notes preserved" `Quick test_note_preserved;
    Alcotest.test_case "decision survives a rebuild" `Quick test_survives_rebuild;
    Alcotest.test_case "wrong design rejected" `Quick test_wrong_design_rejected;
    Alcotest.test_case "unknown names rejected" `Quick test_unknown_names_rejected;
    Alcotest.test_case "partial decisions allowed" `Quick test_partial_decisions_allowed;
  ]
