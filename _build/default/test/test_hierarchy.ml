(* Hierarchical component groups (the paper's future-work extension). *)

let setup () =
  let slif = Lazy.force Helpers.fuzzy_slif in
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic_mem ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  (* Split: datapath + tables on the ASIC, everything else on the cpu. *)
  List.iter
    (fun name ->
      match Slif.Types.node_by_name s name with
      | Some n -> Slif.Partition.assign_node part ~node:n.n_id (Slif.Partition.Cproc 1)
      | None -> ())
    [ "evaluate_rule"; "convolve"; "mr1"; "mr2"; "tmr1"; "tmr2" ];
  (s, Specsyn.Search.estimator graph part)

let test_make_validation () =
  (match Slif.Hierarchy.make ~name:"empty" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty group accepted");
  match Slif.Hierarchy.make ~name:"dup" [ Slif.Partition.Cproc 0; Slif.Partition.Cproc 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate members accepted"

let test_whole_board_io_is_port_traffic_only () =
  (* A group containing every component: only port channels cross. *)
  let s, est = setup () in
  let board =
    Slif.Hierarchy.make ~name:"board"
      [ Slif.Partition.Cproc 0; Slif.Partition.Cproc 1; Slif.Partition.Cmem 0 ]
  in
  let cut = Slif.Hierarchy.cut_chans est board in
  Alcotest.(check bool) "only port destinations cross" true
    (List.for_all
       (fun (c : Slif.Types.channel) ->
         match c.c_dst with Slif.Types.Dport _ -> true | _ -> false)
       cut);
  ignore s

let test_group_io_less_than_member_io () =
  (* Inter-chip channels disappear at the board boundary: the cut-channel
     set of the group is a subset of the union of member cuts. *)
  let _, est = setup () in
  let board =
    Slif.Hierarchy.make ~name:"board" [ Slif.Partition.Cproc 0; Slif.Partition.Cproc 1 ]
  in
  let group_cut = List.length (Slif.Hierarchy.cut_chans est board) in
  let member_cut =
    List.length (Slif.Estimate.cut_chans est (Slif.Partition.Cproc 0))
    + List.length (Slif.Estimate.cut_chans est (Slif.Partition.Cproc 1))
  in
  Alcotest.(check bool) "group cut smaller" true (group_cut < member_cut)

let test_singleton_group_equals_component () =
  let _, est = setup () in
  let solo = Slif.Hierarchy.make ~name:"chip" [ Slif.Partition.Cproc 1 ] in
  Alcotest.(check int) "singleton group = component io"
    (Slif.Estimate.io_pins est (Slif.Partition.Cproc 1))
    (Slif.Hierarchy.io_pins est solo);
  Alcotest.(check int) "same cut set"
    (List.length (Slif.Estimate.cut_chans est (Slif.Partition.Cproc 1)))
    (List.length (Slif.Hierarchy.cut_chans est solo))

let test_internal_traffic () =
  let _, est = setup () in
  let pair =
    Slif.Hierarchy.make ~name:"pair" [ Slif.Partition.Cproc 0; Slif.Partition.Cproc 1 ]
  in
  let solo = Slif.Hierarchy.make ~name:"solo" [ Slif.Partition.Cproc 1 ] in
  Alcotest.(check bool) "pair contains more internal traffic" true
    (Slif.Hierarchy.internal_traffic_mbps est pair
    >= Slif.Hierarchy.internal_traffic_mbps est solo);
  Alcotest.(check bool) "traffic non-negative" true
    (Slif.Hierarchy.internal_traffic_mbps est solo >= 0.0)

let test_sizes_per_member () =
  let s, est = setup () in
  let board =
    Slif.Hierarchy.make ~name:"board" [ Slif.Partition.Cproc 0; Slif.Partition.Cproc 1 ]
  in
  match Slif.Hierarchy.sizes est board with
  | [ ("cpu", cpu_size); ("asic", asic_size) ] ->
      Alcotest.(check (float 1e-9)) "cpu size matches component query"
        (Slif.Estimate.size est (Slif.Partition.Cproc 0))
        cpu_size;
      Alcotest.(check bool) "asic has area" true (asic_size > 0.0);
      ignore s
  | _ -> Alcotest.fail "expected two member sizes"

let test_multi_bus_group_io () =
  (* proc_asic_mem has two buses: spreading the cut channels over both
     counts both widths at the group boundary. *)
  let s, est = setup () in
  let part = Slif.Estimate.partition est in
  (* Route every channel whose destination is a port over bus 1. *)
  Array.iter
    (fun (c : Slif.Types.channel) ->
      match c.c_dst with
      | Slif.Types.Dport _ -> Slif.Partition.assign_chan part ~chan:c.c_id ~bus:1
      | Slif.Types.Dnode _ -> ())
    s.Slif.Types.chans;
  let board =
    Slif.Hierarchy.make ~name:"board"
      [ Slif.Partition.Cproc 0; Slif.Partition.Cproc 1; Slif.Partition.Cmem 0 ]
  in
  (* Only port channels cross the whole board, all on bus 1 (8 bits). *)
  Alcotest.(check int) "board pins = bus1 width"
    s.Slif.Types.buses.(1).b_bitwidth
    (Slif.Hierarchy.io_pins est board)

let suite =
  [
    Alcotest.test_case "group validation" `Quick test_make_validation;
    Alcotest.test_case "multi-bus group io" `Quick test_multi_bus_group_io;
    Alcotest.test_case "whole-board io is port traffic" `Quick
      test_whole_board_io_is_port_traffic_only;
    Alcotest.test_case "grouping hides inter-chip channels" `Quick
      test_group_io_less_than_member_io;
    Alcotest.test_case "singleton group equals component" `Quick
      test_singleton_group_equals_component;
    Alcotest.test_case "internal traffic" `Quick test_internal_traffic;
    Alcotest.test_case "per-member sizes" `Quick test_sizes_per_member;
  ]
