open Vhdl

let sem_of src = Sem.build (Parser.parse src)

let fixture =
  {|entity e is
  port ( pin : in integer range 0 to 255; pout : out bit );
end;
architecture a of e is
  type tbl is array (1 to 128) of integer range 0 to 255;
  shared variable g : integer range 0 to 15;
  shared variable arr : tbl;
  signal s : bit_vector(12);
  constant k : integer := 7;
  function f(x : in integer) return integer is
  begin
    return x + 1;
  end f;
  procedure p(a : in integer range 0 to 255; b : out integer range 0 to 255) is
    variable local : integer range 0 to 3;
    variable g : boolean;
  begin
    local := a mod 4;
    b := f(local) + k;
    g := true;
  end p;
begin
  main: process
    variable mine : integer;
  begin
    g := pin;
    p(g, mine);
    pout <= s(3);
    wait for 1 us;
  end process;
end;|}

let sem = lazy (sem_of fixture)

let test_global_lookup () =
  let env = Sem.global_env (Lazy.force sem) in
  (match Sem.lookup env "g" with
  | Some (Sem.Global_var _) -> ()
  | _ -> Alcotest.fail "g should be a global variable");
  (match Sem.lookup env "s" with
  | Some (Sem.Global_var _) -> ()
  | _ -> Alcotest.fail "s should resolve as a global (signal)");
  (match Sem.lookup env "pin" with
  | Some (Sem.Port (Ast.In, _)) -> ()
  | _ -> Alcotest.fail "pin should be an input port");
  (match Sem.lookup env "k" with
  | Some (Sem.Constant _) -> ()
  | _ -> Alcotest.fail "k should be a constant");
  match Sem.lookup env "f" with
  | Some (Sem.Subprogram _) -> ()
  | _ -> Alcotest.fail "f should be a subprogram"

let test_local_shadows_global () =
  let env = Sem.env_of_behavior (Lazy.force sem) "p" in
  (match Sem.lookup env "g" with
  | Some (Sem.Local_var Ast.Boolean) -> ()
  | _ -> Alcotest.fail "p's local g shadows the global");
  match Sem.lookup env "a" with
  | Some (Sem.Param (Ast.In, _)) -> ()
  | _ -> Alcotest.fail "a is a parameter"

let test_process_env () =
  let env = Sem.env_of_behavior (Lazy.force sem) "main" in
  (match Sem.lookup env "mine" with
  | Some (Sem.Local_var _) -> ()
  | _ -> Alcotest.fail "mine is main's local");
  match Sem.lookup env "g" with
  | Some (Sem.Global_var _) -> ()
  | _ -> Alcotest.fail "main sees the global g"

let test_unknown_name () =
  let env = Sem.global_env (Lazy.force sem) in
  Alcotest.(check bool) "nope is unbound" true (Sem.lookup env "nope" = None);
  match Sem.lookup_exn env "nope" with
  | exception Sem.Unbound "nope" -> ()
  | _ -> Alcotest.fail "lookup_exn should raise"

let test_scalar_bits () =
  let t = Lazy.force sem in
  Alcotest.(check int) "integer is 32" 32 (Sem.scalar_bits t Ast.Integer);
  Alcotest.(check int) "bit is 1" 1 (Sem.scalar_bits t Ast.Bit);
  Alcotest.(check int) "boolean is 1" 1 (Sem.scalar_bits t Ast.Boolean);
  Alcotest.(check int) "bit_vector(12)" 12 (Sem.scalar_bits t (Ast.Bit_vector 12));
  Alcotest.(check int) "0..255 is 8" 8 (Sem.scalar_bits t (Ast.Int_range (0, 255)));
  Alcotest.(check int) "named tbl elem is 8" 8 (Sem.scalar_bits t (Ast.Named "tbl"))

let test_transfer_bits_array () =
  (* The paper's Figure 3 example: 128-entry array of bytes accesses move
     8 data + 7 address = 15 bits. *)
  let t = Lazy.force sem in
  Alcotest.(check int) "tbl access is 15 bits" 15 (Sem.transfer_bits t (Ast.Named "tbl"));
  Alcotest.(check int) "scalar transfer = scalar bits" 8
    (Sem.transfer_bits t (Ast.Int_range (0, 255)))

let test_storage_bits () =
  let t = Lazy.force sem in
  Alcotest.(check int) "tbl stores 128x8" 1024 (Sem.storage_bits t (Ast.Named "tbl"));
  Alcotest.(check int) "scalar storage" 4 (Sem.storage_bits t (Ast.Int_range (0, 15)))

let test_array_length () =
  let t = Lazy.force sem in
  Alcotest.(check (option int)) "tbl length" (Some 128) (Sem.array_length t (Ast.Named "tbl"));
  Alcotest.(check (option int)) "scalar has none" None (Sem.array_length t Ast.Integer)

let test_unknown_named_type () =
  let t = Lazy.force sem in
  match Sem.scalar_bits t (Ast.Named "nonexistent") with
  | exception Sem.Unbound "nonexistent" -> ()
  | _ -> Alcotest.fail "expected Unbound"

let test_is_function_name () =
  let t = Lazy.force sem in
  Alcotest.(check bool) "f" true (Sem.is_function_name t "f");
  Alcotest.(check bool) "p" true (Sem.is_function_name t "p");
  Alcotest.(check bool) "g" false (Sem.is_function_name t "g")

let test_params_bits () =
  let t = Lazy.force sem in
  match Sem.lookup_exn (Sem.global_env t) "p" with
  | Sem.Subprogram sub ->
      (* two byte-range params: 8 + 8 *)
      Alcotest.(check int) "p params" 16 (Sem.params_bits t sub)
  | _ -> Alcotest.fail "p not found"

let test_behavior_names () =
  let t = Lazy.force sem in
  Alcotest.(check (list string)) "order" [ "main"; "f"; "p" ] (Sem.behavior_names t)

let suite =
  [
    Alcotest.test_case "global lookups" `Quick test_global_lookup;
    Alcotest.test_case "locals shadow globals" `Quick test_local_shadows_global;
    Alcotest.test_case "process scope" `Quick test_process_env;
    Alcotest.test_case "unknown names" `Quick test_unknown_name;
    Alcotest.test_case "scalar bit widths" `Quick test_scalar_bits;
    Alcotest.test_case "array transfer bits (paper example)" `Quick test_transfer_bits_array;
    Alcotest.test_case "storage bits" `Quick test_storage_bits;
    Alcotest.test_case "array length" `Quick test_array_length;
    Alcotest.test_case "unknown named type" `Quick test_unknown_named_type;
    Alcotest.test_case "is_function_name" `Quick test_is_function_name;
    Alcotest.test_case "params_bits" `Quick test_params_bits;
    Alcotest.test_case "behavior name order" `Quick test_behavior_names;
  ]
