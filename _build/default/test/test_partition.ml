(* Partition representation and proper-partition validation. *)

let fixture () = Helpers.all_on_cpu (Lazy.force Helpers.tiny_slif)

let test_totality () =
  let s, part = fixture () in
  Alcotest.(check bool) "total" true (Slif.Partition.is_total part);
  let fresh = Slif.Partition.create s in
  Alcotest.(check bool) "fresh is not total" false (Slif.Partition.is_total fresh)

let test_version_bumps () =
  let _, part = fixture () in
  let v0 = Slif.Partition.version part in
  Slif.Partition.assign_node part ~node:0 (Slif.Partition.Cproc 1);
  Alcotest.(check bool) "bumped" true (Slif.Partition.version part > v0)

let test_copy_independent () =
  let _, part = fixture () in
  let copy = Slif.Partition.copy part in
  Slif.Partition.assign_node part ~node:0 (Slif.Partition.Cproc 1);
  Alcotest.(check bool) "copy unchanged" true
    (Slif.Partition.comp_of copy 0 = Some (Slif.Partition.Cproc 0))

let test_comp_of_exn () =
  let s, _ = fixture () in
  let fresh = Slif.Partition.create s in
  match Slif.Partition.comp_of_exn fresh 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on unassigned node"

let test_bad_assignments_rejected () =
  let s, _ = fixture () in
  let part = Slif.Partition.create s in
  (match Slif.Partition.assign_node part ~node:0 (Slif.Partition.Cproc 99) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nonexistent processor accepted");
  (match Slif.Partition.assign_node part ~node:9999 (Slif.Partition.Cproc 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nonexistent node accepted");
  match Slif.Partition.assign_chan part ~chan:0 ~bus:42 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nonexistent bus accepted"

let test_nodes_of_comp () =
  let s, part = fixture () in
  let on_cpu = Slif.Partition.nodes_of_comp part (Slif.Partition.Cproc 0) in
  Alcotest.(check int) "everything on cpu" (Array.length s.Slif.Types.nodes)
    (List.length on_cpu);
  Alcotest.(check (list int)) "nothing on asic" []
    (Slif.Partition.nodes_of_comp part (Slif.Partition.Cproc 1))

let test_same_component () =
  let s, part = fixture () in
  let chan =
    Array.to_list s.Slif.Types.chans
    |> List.find (fun (c : Slif.Types.channel) ->
           match c.c_dst with Slif.Types.Dnode _ -> true | Slif.Types.Dport _ -> false)
  in
  Alcotest.(check bool) "co-located" true
    (Slif.Partition.same_component part chan.c_src chan.c_dst);
  (match chan.c_dst with
  | Slif.Types.Dnode d ->
      Slif.Partition.assign_node part ~node:d (Slif.Partition.Cproc 1);
      Alcotest.(check bool) "split" false
        (Slif.Partition.same_component part chan.c_src chan.c_dst)
  | Slif.Types.Dport _ -> Alcotest.fail "expected a node destination");
  (* Ports are never on a component. *)
  let port_chan =
    Array.to_list s.Slif.Types.chans
    |> List.find (fun (c : Slif.Types.channel) ->
           match c.c_dst with Slif.Types.Dport _ -> true | _ -> false)
  in
  Alcotest.(check bool) "port never co-located" false
    (Slif.Partition.same_component part port_chan.c_src port_chan.c_dst)

let test_validate_proper () =
  let _, part = fixture () in
  Alcotest.(check bool) "proper" true (Slif.Validate.is_proper part)

let test_validate_unassigned () =
  let s, _ = fixture () in
  let part = Slif.Partition.create s in
  let violations = Slif.Validate.check part in
  Alcotest.(check bool) "unassigned nodes reported" true
    (List.exists
       (function Slif.Validate.Unassigned_node _ -> true | _ -> false)
       violations);
  Alcotest.(check bool) "unassigned channels reported" true
    (List.exists
       (function Slif.Validate.Unassigned_chan _ -> true | _ -> false)
       violations)

let test_validate_behavior_on_memory () =
  let s, part = fixture () in
  let behavior =
    Array.to_list s.Slif.Types.nodes |> List.find (fun n -> Slif.Types.is_behavior n)
  in
  Slif.Partition.assign_node part ~node:behavior.Slif.Types.n_id (Slif.Partition.Cmem 0);
  let violations = Slif.Validate.check part in
  Alcotest.(check bool) "behavior-on-memory reported" true
    (List.exists
       (function Slif.Validate.Behavior_on_memory _ -> true | _ -> false)
       violations);
  Alcotest.(check bool) "message is readable" true
    (List.for_all
       (fun v -> String.length (Slif.Validate.violation_to_string s v) > 0)
       violations)

let test_validate_variable_on_memory_ok () =
  let s, part = fixture () in
  let variable =
    Array.to_list s.Slif.Types.nodes |> List.find (fun n -> Slif.Types.is_variable n)
  in
  Slif.Partition.assign_node part ~node:variable.Slif.Types.n_id (Slif.Partition.Cmem 0);
  Alcotest.(check bool) "still proper" true (Slif.Validate.is_proper part)

let suite =
  [
    Alcotest.test_case "totality" `Quick test_totality;
    Alcotest.test_case "version bumps on assignment" `Quick test_version_bumps;
    Alcotest.test_case "copies are independent" `Quick test_copy_independent;
    Alcotest.test_case "comp_of_exn on unassigned" `Quick test_comp_of_exn;
    Alcotest.test_case "bad assignments rejected" `Quick test_bad_assignments_rejected;
    Alcotest.test_case "nodes_of_comp" `Quick test_nodes_of_comp;
    Alcotest.test_case "same_component" `Quick test_same_component;
    Alcotest.test_case "validate accepts proper partitions" `Quick test_validate_proper;
    Alcotest.test_case "validate reports unassigned objects" `Quick test_validate_unassigned;
    Alcotest.test_case "validate rejects behavior on memory" `Quick test_validate_behavior_on_memory;
    Alcotest.test_case "variables may map to memories" `Quick test_validate_variable_on_memory_ok;
  ]
