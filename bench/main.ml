(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) plus two ablations, as laid out in DESIGN.md §3.

     Figure 4  — Lines / BV / C / T-slif / T-est per example
     R1        — format sizes: SLIF vs ADD/VT vs CDFG (fuzzy)
     R2        — cost of an n-squared partitioning algorithm per format
     R3        — preprocessed size estimation vs rough synthesis per query
     R4        — exploration throughput (partitions per second)
     A1        — ablation: estimator memoization and incremental
                 invalidation on/off
     A2        — ablation: bus width and ts/td sensitivity of exectime
     A7        — full-sweep vs delta scoring through the move engine

   Bechamel measures the per-query micro-costs; wall-clock timing covers
   the one-shot build times.  Absolute numbers are host-dependent; the
   shapes are what EXPERIMENTS.md compares against the paper. *)

open Bechamel
open Toolkit

(* --- Shared pipeline ----------------------------------------------------- *)

let pipeline (spec : Specs.Registry.spec) =
  let design = Vhdl.Parser.parse spec.source in
  let sem = Vhdl.Sem.build design in
  let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
  (design, sem, slif)

let proc_asic_setup slif =
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  (s, graph, part)

let all_processes (s : Slif.Types.t) =
  Array.to_list s.nodes |> List.filter Slif.Types.is_process

let full_estimate graph part (s : Slif.Types.t) =
  let est = Specsyn.Search.estimator graph part in
  List.iter (fun (n : Slif.Types.node) -> ignore (Slif.Estimate.exectime_us est n.n_id))
    (all_processes s);
  ignore (Slif.Estimate.size est (Slif.Partition.Cproc 0));
  ignore (Slif.Estimate.size est (Slif.Partition.Cproc 1));
  ignore (Slif.Estimate.io_pins est (Slif.Partition.Cproc 0));
  ignore (Slif.Estimate.io_pins est (Slif.Partition.Cproc 1));
  ignore (Slif.Estimate.bus_bitrate_mbps est 0)

(* --- Bechamel helpers ------------------------------------------------------ *)

let benchmark_ns test =
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with Some (v :: _) -> v | _ -> nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort compare

let print_bench_group title tests =
  Printf.printf "\n-- bechamel: %s --\n" title;
  let table = Slif_util.Table.create ~header:[ "benchmark"; "ns/run"; "us/run" ] in
  List.iter
    (fun test ->
      List.iter
        (fun (name, ns) ->
          Slif_util.Table.add_row table
            [ name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.3f" (ns /. 1e3) ])
        (benchmark_ns test))
    tests;
  Slif_util.Table.print table

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

(* --- Figure 4 --------------------------------------------------------------- *)

let figure4 () =
  section "Figure 4: building SLIF and obtaining estimations";
  let table =
    Slif_util.Table.create
      ~header:[ ""; "Lines"; "BV"; "C"; "T-slif(s)"; "T-est(s)"; "paper T-slif"; "paper T-est" ]
  in
  let paper_tslif = [ ("ans", 2.20); ("ether", 10.40); ("fuzzy", 0.46); ("vol", 0.34) ] in
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let slif, t_slif = Slif_obs.Clock.time (fun () -> pipeline spec) in
      let _, _, slif = slif in
      let s, graph, part = proc_asic_setup slif in
      let t_est = Slif_obs.Clock.time_n 20 (fun () -> full_estimate graph part s) in
      let stats = Slif.Stats.of_slif slif in
      Slif_util.Table.add_row table
        [
          spec.spec_name;
          string_of_int (Specs.Registry.line_count spec);
          string_of_int stats.Slif.Stats.bv;
          string_of_int stats.Slif.Stats.channels;
          Printf.sprintf "%.4f" t_slif;
          Printf.sprintf "%.6f" t_est;
          Printf.sprintf "%.2f" (List.assoc spec.spec_name paper_tslif);
          "0.00";
        ])
    Specs.Registry.all;
  Slif_util.Table.print table;
  print_endline
    "(paper times are on a Sparc 2; the shape to check: T-slif of seconds-or-less,\n\
    \ scaling with Lines, and T-est orders of magnitude below T-slif)";
  (* Micro-benches for the same quantities on the largest example. *)
  let spec = Specs.Registry.find_exn "ether" in
  let _, _, slif = pipeline spec in
  let s, graph, part = proc_asic_setup slif in
  print_bench_group "build vs estimate (ether)"
    [
      Test.make ~name:"T-slif: parse+build+annotate ether"
        (Staged.stage (fun () -> ignore (pipeline spec)));
      Test.make ~name:"T-est: all metrics, one partition (ether)"
        (Staged.stage (fun () -> full_estimate graph part s));
    ]

(* --- R1 / R2: format sizes and n-squared costs ----------------------------- *)

let r1_r2 () =
  section "R1/R2: format sizes and the cost of an n^2 algorithm";
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let design, sem, _ = pipeline spec in
      let stats = Slif.Stats.of_slif (Slif.Build.build sem) in
      let add = Addfmt.Add.of_design design in
      let cdfg = Cdfg.Graph.of_design design in
      Printf.printf "\n--- %s ---\n" spec.spec_name;
      let table =
        Slif_util.Table.create ~header:[ "format"; "nodes"; "edges"; "n^2 computations" ]
      in
      let row name n e =
        Slif_util.Table.add_row table
          [ name; string_of_int n; string_of_int e; string_of_int (n * n) ]
      in
      row "SLIF-AG" stats.Slif.Stats.bv stats.Slif.Stats.channels;
      row "ADD/VT" (Addfmt.Add.node_count add) (Addfmt.Add.edge_count add);
      row "CDFG" (Cdfg.Graph.node_count cdfg) (Cdfg.Graph.edge_count cdfg);
      Slif_util.Table.print table)
    Specs.Registry.all;
  print_endline
    "\n(paper, fuzzy: SLIF 35/56, ADD >450/400, CDFG >1100/900; n^2 costs 1225 /\n\
    \ 202500 / 1210000 — the orderings and the quadratic blow-up are the claims)";
  (* Measure an actual O(n^2) pass over each format's nodes for fuzzy. *)
  let spec = Specs.Registry.find_exn "fuzzy" in
  let design, sem, _ = pipeline spec in
  let slif_n = (Slif.Stats.of_slif (Slif.Build.build sem)).Slif.Stats.bv in
  let add_n = Addfmt.Add.node_count (Addfmt.Add.of_design design) in
  let cdfg_n = Cdfg.Graph.node_count (Cdfg.Graph.of_design design) in
  let n2_work n =
    (* A stand-in pairwise computation (e.g. a closeness metric). *)
    let acc = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        acc := !acc + ((i * j) mod 7)
      done
    done;
    !acc
  in
  print_bench_group "n^2 sweep per format granularity (fuzzy)"
    [
      Test.make ~name:(Printf.sprintf "n2 over SLIF   (n=%d)" slif_n)
        (Staged.stage (fun () -> ignore (n2_work slif_n)));
      Test.make ~name:(Printf.sprintf "n2 over ADD/VT (n=%d)" add_n)
        (Staged.stage (fun () -> ignore (n2_work add_n)));
      Test.make ~name:(Printf.sprintf "n2 over CDFG   (n=%d)" cdfg_n)
        (Staged.stage (fun () -> ignore (n2_work cdfg_n)));
    ]

(* --- R3: preprocessing payoff ------------------------------------------------ *)

let r3 () =
  section "R3: preprocessed size estimation vs rough synthesis per query";
  let spec = Specs.Registry.find_exn "fuzzy" in
  let design, _, slif = pipeline spec in
  let s, graph, part = proc_asic_setup slif in
  let est = Specsyn.Search.estimator graph part in
  let cdfg = Cdfg.Graph.of_design design in
  ignore s;
  print_bench_group "size query (fuzzy, ASIC node set)"
    [
      Test.make ~name:"SLIF: sum preprocessed weights"
        (Staged.stage (fun () -> ignore (Slif.Estimate.size est (Slif.Partition.Cproc 0))));
      Test.make ~name:"CDFG: rough synthesis of the node set"
        (Staged.stage (fun () ->
             ignore (Cdfg.Synthest.rough_synthesis Tech.Parts.asic_gal cdfg)));
    ];
  (* What the gap means for a 1000-partition exploration. *)
  let t_slif =
    Slif_obs.Clock.time_n 1000 (fun () -> Slif.Estimate.size est (Slif.Partition.Cproc 0))
  in
  let t_synth =
    Slif_obs.Clock.time_n 20 (fun () ->
        Cdfg.Synthest.rough_synthesis Tech.Parts.asic_gal cdfg)
  in
  Printf.printf
    "\nexploring 1000 partitions: SLIF %.2f ms vs re-synthesis %.2f ms (%.0fx)\n"
    (t_slif *. 1e6) (t_synth *. 1e6) (t_synth /. t_slif)

(* --- R4: exploration throughput ---------------------------------------------- *)

let r4 () =
  section "R4: exploration throughput (thousands of designs)";
  let spec = Specs.Registry.find_exn "ether" in
  let _, _, slif = pipeline spec in
  let constraints =
    { Specsyn.Cost.deadlines_us = [ ("txctl", 2000.0); ("rxctl", 2000.0) ] }
  in
  let entries =
    Specsyn.Explore.run ~constraints
      ~algos:
        [
          Specsyn.Explore.Random 200;
          Specsyn.Explore.Greedy;
          Specsyn.Explore.Group_migration;
          Specsyn.Explore.Annealing { Specsyn.Annealing.default_params with steps = 2000 };
          Specsyn.Explore.Clustering 4;
        ]
      ~allocs:[ Specsyn.Alloc.proc_asic (); Specsyn.Alloc.proc_asic_mem () ]
      slif
  in
  print_endline (Specsyn.Report.explore_report entries);
  let total =
    List.fold_left (fun acc e -> acc + e.Specsyn.Explore.solution.Specsyn.Search.evaluated) 0 entries
  in
  let time = List.fold_left (fun acc e -> acc +. e.Specsyn.Explore.elapsed_s) 0.0 entries in
  Printf.printf "\ntotal: %d partitions in %.2fs -> %.0f designs/second\n" total time
    (float_of_int total /. time)

(* --- A1: memoization ablation -------------------------------------------------- *)

let a1 () =
  section "A1 (ablation): estimator caching strategies";
  let spec = Specs.Registry.find_exn "ether" in
  let _, _, slif = pipeline spec in
  let s, graph, part = proc_asic_setup slif in
  let procs = all_processes s in
  let node_count = Array.length s.Slif.Types.nodes in
  let rng = Slif_util.Prng.create 99 in
  (* One workload: move a random node, then query every process time. *)
  let workload invalidate est =
    let node = Slif_util.Prng.int rng node_count in
    let target =
      if Slif.Types.is_behavior s.Slif.Types.nodes.(node) then
        Slif.Partition.Cproc (Slif_util.Prng.int rng 2)
      else Slif.Partition.Cproc (Slif_util.Prng.int rng 2)
    in
    Slif.Partition.assign_node part ~node target;
    (match invalidate with
    | `Full -> Slif.Estimate.invalidate_all est
    | `Incremental -> Slif.Estimate.note_node_moved est node);
    List.iter
      (fun (n : Slif.Types.node) -> ignore (Slif.Estimate.exectime_us est n.n_id))
      procs
  in
  let est_full = Specsyn.Search.estimator graph part in
  let est_incr = Specsyn.Search.estimator graph part in
  print_bench_group "move-then-requery (ether)"
    [
      Test.make ~name:"full invalidation per move"
        (Staged.stage (fun () -> workload `Full est_full));
      Test.make ~name:"incremental invalidation per move"
        (Staged.stage (fun () -> workload `Incremental est_incr));
    ];
  (* Cache effectiveness on repeated queries without moves. *)
  let est = Specsyn.Search.estimator graph part in
  List.iter (fun (n : Slif.Types.node) -> ignore (Slif.Estimate.exectime_us est n.n_id)) procs;
  let q0 = Slif.Estimate.stats_queries est and h0 = Slif.Estimate.stats_cache_hits est in
  List.iter (fun (n : Slif.Types.node) -> ignore (Slif.Estimate.exectime_us est n.n_id)) procs;
  Printf.printf "\ncache: %d queries, %d hits after warm re-query (warm-up: %d/%d)\n"
    (Slif.Estimate.stats_queries est)
    (Slif.Estimate.stats_cache_hits est)
    q0 h0

(* --- A2: bus sensitivity ------------------------------------------------------- *)

let a2 () =
  section "A2 (ablation): bus width and ts/td sensitivity of exectime";
  let spec = Specs.Registry.find_exn "fuzzy" in
  let _, _, slif = pipeline spec in
  let table =
    Slif_util.Table.create
      ~header:[ "bus width"; "td/ts"; "exectime(fuzzymain) us"; "io(asic) pins" ]
  in
  List.iter
    (fun width ->
      List.iter
        (fun td_factor ->
          let bus =
            {
              Slif.Types.b_id = 0;
              b_name = Printf.sprintf "bus%d" width;
              b_bitwidth = width;
              b_ts_us = 0.04;
              b_td_us = 0.04 *. td_factor;
              b_capacity_mbps = None;
              b_ts_by_tech = [];
              b_td_by_pair = [];
            }
          in
          let alloc = Specsyn.Alloc.proc_asic () in
          let alloc = { alloc with Specsyn.Alloc.buses = [ bus ] } in
          let s = Specsyn.Alloc.apply slif alloc in
          let graph = Slif.Graph.make s in
          let part = Specsyn.Search.seed_partition s in
          (* Split: datapath behaviors + tables on the ASIC. *)
          List.iter
            (fun name ->
              match Slif.Types.node_by_name s name with
              | Some n ->
                  Slif.Partition.assign_node part ~node:n.n_id (Slif.Partition.Cproc 1)
              | None -> ())
            [ "evaluate_rule"; "convolve"; "min2"; "max2"; "mr1"; "mr2"; "tmr1"; "tmr2" ];
          let est = Specsyn.Search.estimator graph part in
          let main =
            match Slif.Types.node_by_name s "fuzzymain" with
            | Some n -> n.n_id
            | None -> assert false
          in
          Slif_util.Table.add_row table
            [
              string_of_int width;
              Printf.sprintf "%.0fx" td_factor;
              Printf.sprintf "%.1f" (Slif.Estimate.exectime_us est main);
              string_of_int (Slif.Estimate.io_pins est (Slif.Partition.Cproc 1));
            ])
        [ 2.0; 6.0; 12.0 ])
    [ 8; 16; 32; 64 ];
  Slif_util.Table.print table;
  print_endline
    "(wider buses cut the ceil(bits/width) transfer count; higher td/ts\n\
    \ penalizes the hardware/software split — both should show monotonically)"

(* --- A3: capacity-aware execution time ---------------------------------- *)

let a3 () =
  section "A3 (ablation): bus-contention-aware execution time";
  let spec = Specs.Registry.find_exn "fuzzy" in
  let _, _, slif = pipeline spec in
  let table =
    Slif_util.Table.create
      ~header:[ "bus capacity (Mb/s)"; "slowdown"; "plain exectime us"; "contended us" ]
  in
  List.iter
    (fun cap ->
      let alloc = Specsyn.Alloc.proc_asic () in
      let buses =
        List.map
          (fun b -> { b with Slif.Types.b_capacity_mbps = Some cap })
          alloc.Specsyn.Alloc.buses
      in
      let s = Specsyn.Alloc.apply slif { alloc with Specsyn.Alloc.buses } in
      let graph = Slif.Graph.make s in
      let part = Specsyn.Search.seed_partition s in
      List.iter
        (fun name ->
          match Slif.Types.node_by_name s name with
          | Some n -> Slif.Partition.assign_node part ~node:n.n_id (Slif.Partition.Cproc 1)
          | None -> ())
        [ "evaluate_rule"; "convolve"; "mr1"; "mr2"; "tmr1"; "tmr2" ];
      let est = Specsyn.Search.estimator graph part in
      let main =
        match Slif.Types.node_by_name s "fuzzymain" with Some n -> n.n_id | None -> 0
      in
      let plain = Slif.Estimate.exectime_us est main in
      let contended = Slif.Estimate.exectime_contended_us est main in
      let factors = Slif.Estimate.bus_slowdowns est in
      Slif_util.Table.add_row table
        [
          Printf.sprintf "%.0f" cap;
          Printf.sprintf "%.2fx" factors.(0);
          Printf.sprintf "%.1f" plain;
          Printf.sprintf "%.1f" contended;
        ])
    [ 1000.0; 200.0; 64.0; 16.0; 4.0 ];
  Slif_util.Table.print table;
  print_endline
    "(once demand exceeds capacity, the slowdown factor rises and the\n\
    \ contended time diverges from the plain equation-1 estimate)"

(* --- A4: frequency-model accuracy against real execution ------------------- *)

let a4 () =
  section "A4 (ablation): frequency model vs interpreted execution";
  print_endline
    "(the paper defers quantitative accuracy measurement to future work; here\n\
    \ the statement-count prediction underlying every accfreq/ict annotation is\n\
    \ checked against the interpreter's exact step counts)";
  let table =
    Slif_util.Table.create
      ~header:
        [ "process"; "executed stmts"; "predicted (measured prof.)"; "err%";
          "predicted (static defaults)"; "err%" ]
  in
  List.iter
    (fun (spec_name, stimulus) ->
      let spec = Specs.Registry.find_exn spec_name in
      let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.Specs.Registry.source) in
      let design = Vhdl.Sem.design sem in
      List.iter
        (fun (p : Vhdl.Ast.process) ->
          let m =
            Flow.Interp.create
              ~limits:{ Flow.Interp.max_steps = 5_000_000; max_while_iters = 10_000 }
              ~inputs:stimulus sem
          in
          match Flow.Interp.run_process m p.Vhdl.Ast.proc_name with
          | () ->
              let measured = float_of_int (Flow.Interp.steps m) in
              if measured > 0.0 then begin
                let profile = Flow.Interp.profile m in
                let predicted =
                  Flow.Workload.expected_statements ~profile sem
                    ~behavior:p.Vhdl.Ast.proc_name
                in
                let static_ =
                  Flow.Workload.expected_statements ~profile:Flow.Profile.empty sem
                    ~behavior:p.Vhdl.Ast.proc_name
                in
                let err x = 100.0 *. abs_float (x -. measured) /. measured in
                Slif_util.Table.add_row table
                  [
                    spec_name ^ "/" ^ p.Vhdl.Ast.proc_name;
                    Printf.sprintf "%.0f" measured;
                    Printf.sprintf "%.1f" predicted;
                    Printf.sprintf "%.2f" (err predicted);
                    Printf.sprintf "%.1f" static_;
                    Printf.sprintf "%.0f" (err static_);
                  ]
              end
          | exception (Flow.Interp.Limit_exceeded _ | Flow.Interp.Runtime_error _) -> ())
        design.Vhdl.Ast.processes)
    [
      ("fuzzy", fun name -> if name = "in1" then 80 else if name = "in2" then 30 else 0);
      ("vol", fun name -> if name = "patient_on" then 1 else if name = "flow_in" then 500 else 0);
      ("ans", fun name -> if name = "ring_in" then 1 else if name = "line_sample" then 128 else 0);
    ];
  Slif_util.Table.print table;
  print_endline
    "(with measured branch probabilities the prediction is near-exact; with\n\
    \ uniform static defaults it deviates — why the paper profiles)"

(* --- A6: observability overhead --------------------------------------------- *)

let a6 () =
  section "A6 (ablation): observability probe overhead (disabled vs enabled)";
  print_endline
    "(every probe behind a disabled registry is one bool check; the estimator\n\
    \ hot loop is the worst case — the target for the disabled column is <5%)";
  let spec = Specs.Registry.find_exn "ether" in
  let _, _, slif = pipeline spec in
  let s, graph, part = proc_asic_setup slif in
  let reps = 300 in
  (* The harness itself runs with the registry enabled; sample both states,
     then leave it enabled for the remaining phases. *)
  Slif_obs.Registry.disable ();
  let t_off = Slif_obs.Clock.time_n reps (fun () -> full_estimate graph part s) in
  Slif_obs.Registry.enable ();
  let t_on = Slif_obs.Clock.time_n reps (fun () -> full_estimate graph part s) in
  Printf.printf
    "full_estimate(ether): disabled %.3f us/run, enabled (counters live) %.3f us/run\n\
     enabled-mode overhead: %.1f%%\n"
    (t_off *. 1e6) (t_on *. 1e6)
    (100.0 *. ((t_on /. t_off) -. 1.0))

(* --- A7: full-sweep vs delta scoring ----------------------------------------- *)

let a7 () =
  section "A7: full-sweep vs delta scoring through the move engine";
  print_endline
    "(the same recorded move trajectory is scored twice: once applying each\n\
    \ move and re-running the full Cost.evaluate sweep after invalidate_all,\n\
    \ once through Engine.propose/commit's delta evaluation — same totals,\n\
    \ different asymptotics)";
  let table =
    Slif_util.Table.create
      ~header:
        [ ""; "moves"; "full(s)"; "delta(s)"; "full parts/s"; "delta parts/s"; "speedup" ]
  in
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let _, _, slif = pipeline spec in
      let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic_mem ()) in
      let graph = Slif.Graph.make s in
      let constraints =
        let processes =
          Array.to_list s.Slif.Types.nodes
          |> List.filter Slif.Types.is_process
          |> List.map (fun (n : Slif.Types.node) -> (n.Slif.Types.n_name, 1000.0))
        in
        { Specsyn.Cost.deadlines_us = processes }
      in
      let problem = Specsyn.Search.problem ~constraints graph in
      (* Record one fixed committed trajectory so both scorers walk the
         exact same partition sequence. *)
      let n_moves = 400 in
      let moves =
        let eng = Specsyn.Engine.of_problem problem (Specsyn.Search.seed_partition s) in
        let rng = Slif_util.Prng.create 2024 in
        let acc = ref [] in
        while List.length !acc < n_moves do
          match Specsyn.Engine.random_move eng rng with
          | None -> ()
          | Some move ->
              ignore (Specsyn.Engine.propose eng move);
              Specsyn.Engine.commit eng;
              acc := move :: !acc
        done;
        List.rev !acc
      in
      let rec apply_raw part = function
        | Specsyn.Engine.Move_node { node; to_ } ->
            Slif.Partition.assign_node part ~node to_
        | Specsyn.Engine.Move_chan { chan; to_bus } ->
            Slif.Partition.assign_chan part ~chan ~bus:to_bus
        | Specsyn.Engine.Move_group ms -> List.iter (apply_raw part) ms
      in
      let (), t_full =
        Slif_obs.Clock.time (fun () ->
            let part = Specsyn.Search.seed_partition s in
            let est = Specsyn.Search.estimator graph part in
            ignore (Specsyn.Cost.total ~constraints est);
            List.iter
              (fun move ->
                apply_raw part move;
                Slif.Estimate.invalidate_all est;
                ignore (Specsyn.Cost.total ~constraints est))
              moves)
      in
      let (), t_delta =
        Slif_obs.Clock.time (fun () ->
            let eng =
              Specsyn.Engine.of_problem problem (Specsyn.Search.seed_partition s)
            in
            List.iter
              (fun move ->
                ignore (Specsyn.Engine.propose eng move);
                Specsyn.Engine.commit eng)
              moves)
      in
      let per_s t = if t > 0.0 then float_of_int n_moves /. t else 0.0 in
      Slif_util.Table.add_row table
        [
          spec.spec_name;
          string_of_int n_moves;
          Printf.sprintf "%.4f" t_full;
          Printf.sprintf "%.4f" t_delta;
          Printf.sprintf "%.0f" (per_s t_full);
          Printf.sprintf "%.0f" (per_s t_delta);
          Printf.sprintf "%.1fx" (t_full /. t_delta);
        ])
    Specs.Registry.all;
  Slif_util.Table.print table;
  print_endline
    "(delta scoring should sit an order of magnitude or more above the full\n\
    \ sweep, and the gap should widen with spec size — the engine's point)"

(* --- A8: multicore exploration throughput ------------------------------------ *)

(* SLIF_BENCH_FAST=1 shrinks the search budgets to smoke-test size (the CI
   bench step); the full budgets match R4 so the -j 1 row is comparable. *)
let bench_fast = Sys.getenv_opt "SLIF_BENCH_FAST" <> None

let a8 () =
  section "A8: exploration throughput across domain counts (-j)";
  Printf.printf
    "(the R4 sweep on the domain pool; recommended domain count here: %d.\n\
    \ The merged entry list is identical at every -j — only wall-clock moves)\n"
    (Slif_util.Pool.default_jobs ());
  let spec = Specs.Registry.find_exn "ether" in
  let _, _, slif = pipeline spec in
  let constraints =
    { Specsyn.Cost.deadlines_us = [ ("txctl", 2000.0); ("rxctl", 2000.0) ] }
  in
  let algos =
    if bench_fast then
      [
        Specsyn.Explore.Random 20;
        Specsyn.Explore.Greedy;
        Specsyn.Explore.Annealing { Specsyn.Annealing.default_params with steps = 150 };
      ]
    else
      [
        Specsyn.Explore.Random 200;
        Specsyn.Explore.Greedy;
        Specsyn.Explore.Group_migration;
        Specsyn.Explore.Annealing { Specsyn.Annealing.default_params with steps = 2000 };
        Specsyn.Explore.Clustering 4;
      ]
  in
  let allocs = [ Specsyn.Alloc.proc_asic (); Specsyn.Alloc.proc_asic_mem () ] in
  let sweep jobs = Specsyn.Explore.run ~jobs ~constraints ~algos ~allocs slif in
  let table =
    Slif_util.Table.create
      ~header:[ "jobs"; "partitions"; "seconds"; "designs/s"; "speedup vs -j 1" ]
  in
  let baseline = ref nan in
  let reports = ref [] in
  let rates = ref [] in
  List.iter
    (fun jobs ->
      let entries, elapsed = Slif_obs.Clock.time (fun () -> sweep jobs) in
      reports := (jobs, Specsyn.Report.explore_report ~timings:false entries) :: !reports;
      let total =
        List.fold_left
          (fun acc (e : Specsyn.Explore.entry) ->
            acc + e.solution.Specsyn.Search.evaluated)
          0 entries
      in
      let per_s = if elapsed > 0.0 then float_of_int total /. elapsed else 0.0 in
      rates := (jobs, per_s) :: !rates;
      if jobs = 1 then baseline := per_s;
      Slif_obs.Counter.add (Printf.sprintf "bench.a8.designs_per_s.j%d" jobs)
        (int_of_float per_s);
      Slif_util.Table.add_row table
        [
          string_of_int jobs;
          string_of_int total;
          Printf.sprintf "%.3f" elapsed;
          Printf.sprintf "%.0f" per_s;
          Printf.sprintf "%.2fx" (per_s /. !baseline);
        ])
    [ 1; 2; 4; 8 ];
  Slif_util.Table.print table;
  let r1 = List.assoc 1 !reports in
  let identical = List.for_all (fun (_, r) -> r = r1) !reports in
  Printf.printf "entry lists identical across -j: %s\n" (if identical then "yes" else "NO");
  if not identical then exit 1;
  print_endline
    "(speedup tracks physical cores; on a single-core host every row sits\n\
    \ near 1.00x — determinism, not the ratio, is the invariant checked here)";
  (* CI scaling gate (SLIF_BENCH_SCALING_GATE=1): with the pool's
     hardware domain cap, asking for a second job must never cost
     throughput — on a one-core runner -j 2 runs the same single domain
     as -j 1, and on a multicore runner it should gain.  The 0.90x floor
     absorbs run-to-run noise while still catching the old inversion,
     where -j 2 ran at a fraction of -j 1. *)
  if Sys.getenv_opt "SLIF_BENCH_SCALING_GATE" <> None then begin
    let r1 = List.assoc 1 !rates and r2 = List.assoc 2 !rates in
    let ok = r2 >= 0.9 *. r1 in
    Printf.printf "scaling gate: -j2 %.0f designs/s vs -j1 %.0f (floor 0.90x): %s\n" r2 r1
      (if ok then "ok" else "FAIL");
    if not ok then exit 1
  end

(* --- A11: parallel-stack attribution + profiler overhead ---------------------- *)

(* Two claims measured: (1) the A8 sweep's wall time decomposes into
   named categories (task-run / queue-wait / lock-wait / GC / copy /
   idle) with >=90% coverage — the attribution [slif profile] reports;
   (2) the instrumentation the profiler added to the pool costs nothing
   measurable while its switches are off (target <=2% on the A8 sweep).

   Deliberately does NOT go through [Specsyn.Profiler.run]: that driver
   resets the span registry between runs, which would wipe the counters
   and phase spans every earlier bench section accumulated for
   BENCH_obs.json.  The attribution/lock/GC layers have their own
   switches and reset independently. *)
let a11 () =
  section "A11: parallel-stack attribution and profiler overhead";
  let spec = Specs.Registry.find_exn "ether" in
  let _, _, slif = pipeline spec in
  let constraints =
    { Specsyn.Cost.deadlines_us = [ ("txctl", 2000.0); ("rxctl", 2000.0) ] }
  in
  let algos =
    if bench_fast then
      [
        Specsyn.Explore.Random 20;
        Specsyn.Explore.Greedy;
        Specsyn.Explore.Annealing { Specsyn.Annealing.default_params with steps = 150 };
      ]
    else
      [
        Specsyn.Explore.Random 200;
        Specsyn.Explore.Greedy;
        Specsyn.Explore.Group_migration;
        Specsyn.Explore.Annealing { Specsyn.Annealing.default_params with steps = 2000 };
        Specsyn.Explore.Clustering 4;
      ]
  in
  let allocs = [ Specsyn.Alloc.proc_asic (); Specsyn.Alloc.proc_asic_mem () ] in
  let sweep jobs = Specsyn.Explore.run ~jobs ~constraints ~algos ~allocs slif in
  ignore (Slif_obs.Gcprof.start_timing ());
  let table =
    Slif_util.Table.create
      ~header:
        [ "jobs"; "elapsed s"; "task-run s"; "queue s"; "gc s"; "idle s"; "other s";
          "coverage" ]
  in
  List.iter
    (fun jobs ->
      Slif_obs.Attribution.reset ();
      Slif_obs.Lockprof.reset ();
      Slif_obs.Gcprof.reset ();
      Slif_obs.Attribution.enable ();
      Slif_obs.Lockprof.set_enabled true;
      Slif_obs.Gcprof.sample ();
      let _, elapsed = Slif_obs.Clock.time (fun () -> sweep jobs) in
      Slif_obs.Gcprof.poll ();
      Slif_obs.Gcprof.sample ();
      let gc_us = Slif_obs.Gcprof.gc_time_us () in
      let report =
        if gc_us > 0.0 then Slif_obs.Attribution.report ~gc_us ()
        else Slif_obs.Attribution.report ()
      in
      Slif_obs.Attribution.disable ();
      Slif_obs.Lockprof.set_enabled false;
      let cat c =
        List.assoc c report.Slif_obs.Attribution.totals
      in
      let cov = report.Slif_obs.Attribution.coverage in
      Slif_obs.Counter.add
        (Printf.sprintf "bench.a11.coverage_bp.j%d" jobs)
        (int_of_float (cov *. 1e4));
      Slif_obs.Counter.add
        (Printf.sprintf "bench.a11.task_run_ms.j%d" jobs)
        (int_of_float (cat Slif_obs.Attribution.Task_run /. 1e3));
      Slif_obs.Counter.add
        (Printf.sprintf "bench.a11.gc_ms.j%d" jobs)
        (int_of_float (cat Slif_obs.Attribution.Gc /. 1e3));
      Slif_obs.Counter.add
        (Printf.sprintf "bench.a11.idle_ms.j%d" jobs)
        (int_of_float (cat Slif_obs.Attribution.Idle /. 1e3));
      Slif_util.Table.add_row table
        [
          string_of_int jobs;
          Printf.sprintf "%.3f" elapsed;
          Printf.sprintf "%.3f" (cat Slif_obs.Attribution.Task_run /. 1e6);
          Printf.sprintf "%.3f"
            ((cat Slif_obs.Attribution.Queue_wait
             +. cat Slif_obs.Attribution.Lock_wait)
            /. 1e6);
          Printf.sprintf "%.3f" (cat Slif_obs.Attribution.Gc /. 1e6);
          Printf.sprintf "%.3f" (cat Slif_obs.Attribution.Idle /. 1e6);
          Printf.sprintf "%.3f" (report.Slif_obs.Attribution.total_other_us /. 1e6);
          Printf.sprintf "%.1f%%" (100.0 *. cov);
        ])
    (if bench_fast then [ 1; 2 ] else [ 1; 2; 4 ]);
  Slif_util.Table.print table;
  print_endline
    "(the named categories should cover >=90% of each run's measured wall;\n\
    \ on an oversubscribed host the GC and idle columns, not task-run, are\n\
    \ where the extra wall of higher -j goes)";
  (* Overhead ablation: the same sweep with every profiling switch off
     (the default state) vs fully armed.  The bench harness keeps the
     registry enabled, so switch it off for the baseline like A10 does. *)
  Slif_obs.Registry.disable ();
  let best_of n f = List.fold_left min infinity (List.init n (fun _ -> snd (Slif_obs.Clock.time f))) in
  let reps = if bench_fast then 1 else 2 in
  let t_off = best_of reps (fun () -> ignore (sweep 2)) in
  Slif_obs.Attribution.enable ();
  Slif_obs.Lockprof.set_enabled true;
  Slif_obs.Registry.enable ();
  let t_on = best_of reps (fun () -> ignore (sweep 2)) in
  Slif_obs.Attribution.disable ();
  Slif_obs.Lockprof.set_enabled false;
  Slif_obs.Attribution.reset ();
  Slif_obs.Lockprof.reset ();
  let overhead = 100.0 *. ((t_on /. t_off) -. 1.0) in
  Printf.printf
    "\nA8 sweep at -j 2: profiler off %.3f s, armed %.3f s (%+.1f%% when armed)\n"
    t_off t_on overhead;
  Slif_obs.Counter.add "bench.a11.profiler_on_overhead_bp"
    (int_of_float (Float.max 0.0 (overhead *. 100.0)));
  print_endline
    "(the off row is the shipping configuration: its only residual cost is one\n\
    \ atomic load per probe site and a quick_stat at task boundaries — the\n\
    \ armed-vs-off delta is what you pay only while [slif profile] runs)";
  (* Residual cost with everything off, measured directly: a disabled
     probe is one atomic load; the always-on GC delta is one quick_stat
     per task boundary.  Related to the armed run's p50 task duration,
     this bounds the disabled-profiler tax per task. *)
  let n_probe = 1_000_000 and n_stat = 100_000 in
  let t_probe =
    snd
      (Slif_obs.Clock.time (fun () ->
           for _ = 1 to n_probe do
             Slif_obs.Attribution.add Slif_obs.Attribution.Task_run 1.0
           done))
  in
  let t_stat =
    snd
      (Slif_obs.Clock.time (fun () ->
           for _ = 1 to n_stat do
             Slif_obs.Gcprof.sample ()
           done))
  in
  let probe_ns = t_probe *. 1e9 /. float_of_int n_probe in
  let stat_ns = t_stat *. 1e9 /. float_of_int n_stat in
  Slif_obs.Counter.add "bench.a11.disabled_probe_ns" (int_of_float probe_ns);
  Slif_obs.Counter.add "bench.a11.gc_sample_ns" (int_of_float stat_ns);
  Printf.printf "disabled probe %.1f ns/op, gc sample %.0f ns/op" probe_ns stat_ns;
  (match Slif_obs.Histogram.quantiles "pool.task_run_us" with
  | Some q when q.Slif_obs.Histogram.q_p50 > 0.0 ->
      (* ~4 probe sites + 1 quick_stat per pool task *)
      let per_task_ns = (4.0 *. probe_ns) +. stat_ns in
      Printf.printf " — %.3f%% of a p50 task (%.0f us)\n"
        (per_task_ns /. 10.0 /. q.Slif_obs.Histogram.q_p50)
        q.Slif_obs.Histogram.q_p50
  | _ -> print_newline ())

(* --- A9: persistent store payoff ---------------------------------------------- *)

(* The store's claim, measured: the one-time preprocessing cost (cold
   parse+build+annotate) against a warm [--cache-dir] load of the same
   content key, against a [slif serve] answer whose graph is already
   LRU-resident (one socket round-trip, zero rebuild work). *)
let a9 () =
  section "A9: store cache — cold build vs warm load vs server LRU hit";
  let dir = Filename.temp_file "slif_bench_cache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  (* One in-process daemon for the LRU column. *)
  let port = Atomic.make None in
  let on_ready = function
    | Unix.ADDR_INET (_, p) -> Atomic.set port (Some p)
    | _ -> ()
  in
  let cfg = Slif_server.Server.default_config (Slif_server.Server.Tcp 0) in
  let server = Domain.spawn (fun () -> Slif_server.Server.run ~on_ready cfg) in
  let rec wait_port () =
    match Atomic.get port with
    | Some p -> p
    | None ->
        Unix.sleepf 0.01;
        wait_port ()
  in
  let client = Slif_server.Client.connect_tcp (wait_port ()) in
  Fun.protect
    ~finally:(fun () ->
      (try
         ignore (Slif_server.Client.request_raw client {|{"op":"shutdown"}|})
       with _ -> ());
      Slif_server.Client.close client;
      Domain.join server;
      rm_rf dir)
    (fun () ->
      let reps = if bench_fast then 3 else 10 in
      let table =
        Slif_util.Table.create
          ~header:
            [ ""; "cold build (ms)"; "warm load (ms)"; "LRU hit (ms)"; "load speedup" ]
      in
      List.iter
        (fun (spec : Specs.Registry.spec) ->
          let source = spec.source in
          let t_cold =
            Slif_obs.Clock.time_n reps (fun () ->
                ignore (Slif_server.Ops.annotated source))
          in
          (* Populate the entry once, then measure pure disk loads. *)
          ignore
            (Slif_store.Cache.load_or_build ~dir ~source
               ~build:(fun () -> Slif_server.Ops.annotated source)
               ());
          let t_warm =
            Slif_obs.Clock.time_n reps (fun () ->
                match
                  Slif_store.Cache.load_or_build ~dir ~source
                    ~build:(fun () -> failwith "expected a cache hit")
                    ()
                with
                | _, `Hit -> ()
                | _, (`Miss | `Rebuilt) -> failwith "expected a cache hit")
          in
          (* Prime the daemon's LRU, then measure resident round-trips. *)
          let load_line =
            Printf.sprintf {|{"op":"load","spec":"%s"}|} spec.spec_name
          in
          ignore (Slif_server.Client.request_raw client load_line);
          let t_lru =
            Slif_obs.Clock.time_n reps (fun () ->
                ignore (Slif_server.Client.request_raw client load_line))
          in
          let us t = int_of_float (t *. 1e6) in
          Slif_obs.Counter.add
            (Printf.sprintf "bench.a9.cold_us.%s" spec.spec_name)
            (us t_cold);
          Slif_obs.Counter.add
            (Printf.sprintf "bench.a9.warm_us.%s" spec.spec_name)
            (us t_warm);
          Slif_obs.Counter.add
            (Printf.sprintf "bench.a9.lru_us.%s" spec.spec_name)
            (us t_lru);
          Slif_util.Table.add_row table
            [
              spec.spec_name;
              Printf.sprintf "%.3f" (t_cold *. 1e3);
              Printf.sprintf "%.3f" (t_warm *. 1e3);
              Printf.sprintf "%.3f" (t_lru *. 1e3);
              Printf.sprintf "%.1fx" (t_cold /. t_warm);
            ])
        Specs.Registry.all;
      Slif_util.Table.print table;
      print_endline
        "(the warm load skips parse+annotate entirely — it should beat the cold\n\
        \ build by a growing margin as specs get larger; the LRU row adds only a\n\
        \ socket round-trip on top of a hash lookup)")

(* --- A10: daemon latency quantiles + telemetry overhead ----------------------- *)

(* Two claims measured: (1) per-op daemon latency quantiles under 1/2/4
   concurrent clients — the numbers [stats]/[metrics] report, produced
   here from the client side so queueing in the single select loop is
   visible; (2) the telemetry plumbing costs nothing when it is off —
   the estimate hot path with the registry disabled, bare vs under a
   request trace context, must agree within ~2%. *)
let a10 () =
  section "A10: daemon latency quantiles and disabled-telemetry overhead";
  (* Captured by the client sweep, consumed by the flight-recorder gate
     below: what one daemon request writes into the ring, and what it
     costs end to end. *)
  let p50_c1 = ref None in
  let flight_records_per_req = ref None in
  let port = Atomic.make None in
  let on_ready = function
    | Unix.ADDR_INET (_, p) -> Atomic.set port (Some p)
    | _ -> ()
  in
  let cfg = Slif_server.Server.default_config (Slif_server.Server.Tcp 0) in
  let server = Domain.spawn (fun () -> Slif_server.Server.run ~on_ready cfg) in
  let rec wait_port () =
    match Atomic.get port with
    | Some p -> p
    | None ->
        Unix.sleepf 0.01;
        wait_port ()
  in
  let port = wait_port () in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Slif_server.Client.connect_tcp port in
         ignore (Slif_server.Client.request_raw c {|{"op":"shutdown"}|});
         Slif_server.Client.close c
       with _ -> ());
      Domain.join server)
    (fun () ->
      (* Prime the LRU so every measured request is a resident hit. *)
      let prime = Slif_server.Client.connect_tcp port in
      ignore (Slif_server.Client.request_raw prime {|{"op":"load","spec":"fuzzy"}|});
      Slif_server.Client.close prime;
      let reqs_per_client = if bench_fast then 50 else 400 in
      let line = {|{"op":"estimate","spec":"fuzzy"}|} in
      let table =
        Slif_util.Table.create
          ~header:[ "clients"; "requests"; "p50 us"; "p90 us"; "p99 us"; "max us" ]
      in
      let flight_before = Slif_obs.Flight.records_total () in
      List.iter
        (fun clients ->
          let worker () =
            let c = Slif_server.Client.connect_tcp ~timeout_ms:30_000 port in
            let lat =
              Array.init reqs_per_client (fun _ ->
                  let t0 = Slif_obs.Clock.now_us () in
                  ignore (Slif_server.Client.request_raw c line);
                  Slif_obs.Clock.now_us () -. t0)
            in
            Slif_server.Client.close c;
            lat
          in
          let doms = List.init clients (fun _ -> Domain.spawn worker) in
          let lats = List.concat_map (fun d -> Array.to_list (Domain.join d)) doms in
          let w = Slif_obs.Histogram.window ~capacity:(List.length lats) () in
          List.iter (Slif_obs.Histogram.window_record w) lats;
          match Slif_obs.Histogram.window_quantiles w with
          | None -> ()
          | Some q ->
              if clients = 1 then p50_c1 := Some q.q_p50;
              Slif_obs.Counter.add
                (Printf.sprintf "bench.a10.estimate_p50_us.c%d" clients)
                (int_of_float q.q_p50);
              Slif_obs.Counter.add
                (Printf.sprintf "bench.a10.estimate_p99_us.c%d" clients)
                (int_of_float q.q_p99);
              Slif_util.Table.add_row table
                [
                  string_of_int clients;
                  string_of_int q.q_count;
                  Printf.sprintf "%.0f" q.q_p50;
                  Printf.sprintf "%.0f" q.q_p90;
                  Printf.sprintf "%.0f" q.q_p99;
                  Printf.sprintf "%.0f" q.q_max;
                ])
        [ 1; 2; 4 ];
      flight_records_per_req :=
        Some
          (float_of_int (Slif_obs.Flight.records_total () - flight_before)
          /. float_of_int (7 * reqs_per_client));
      Slif_util.Table.print table;
      print_endline
        "(all requests hit the resident graph; the spread between 1 and 4 clients\n\
        \ is queueing in the single select loop, not rebuild work)");
  (* Overhead ablation.  The bench runs with the registry enabled, so
     switch it off for the measurement and back on before returning. *)
  let spec = Specs.Registry.find_exn "fuzzy" in
  let slif = Slif_server.Ops.annotated spec.source in
  let reps = if bench_fast then 30 else 300 in
  let run () = ignore (Slif_server.Ops.estimate_output ~bounds:false slif) in
  let best_of_3 f =
    (* The minimum over three averaged batches is the least noisy
       single-process estimate we can get without bechamel. *)
    List.fold_left min infinity
      (List.init 3 (fun _ -> Slif_obs.Clock.time_n reps f))
  in
  Slif_obs.Registry.disable ();
  ignore (Slif_obs.Clock.time_n reps run);
  let t_off = best_of_3 run in
  let t_off_traced =
    best_of_3 (fun () -> Slif_obs.Registry.with_trace "bench-a10" run)
  in
  Slif_obs.Registry.enable ();
  let t_on = best_of_3 run in
  Slif_obs.Registry.disable ();
  let pct a b = 100.0 *. ((a /. b) -. 1.0) in
  let overhead_off = pct t_off_traced t_off in
  Printf.printf
    "estimate hot path, %d reps averaged, best of 3 batches:\n\
    \  telemetry off:            %.1f us\n\
    \  telemetry off + trace id: %.1f us  (%+.2f%% — the plumbing when disabled)\n\
    \  telemetry on (spans):     %.1f us  (%+.2f%% — for reference)\n"
    reps (t_off *. 1e6) (t_off_traced *. 1e6) overhead_off (t_on *. 1e6)
    (pct t_on t_off);
  Slif_obs.Registry.enable ();
  Slif_obs.Counter.add "bench.a10.overhead_off_bp"
    (int_of_float (Float.max 0.0 (overhead_off *. 100.0)));
  print_endline
    "(the disabled-path delta should sit within ~2% — inside run-to-run noise;\n\
    \ the trace cell is only read once a span or event actually records)";
  (* Flight-recorder ablation: the black box stays on when the registry
     is off — spans still write one compact record into the per-domain
     ring.  Its true cost is nanoseconds per record, far below the
     several-percent run-to-run noise of an A/B on the estimate hot
     path, so the A/B is reported for the record but the gated number
     is composed from two measurements that each dwarf their own noise:
     the per-record cost (tight loop, best of 3 batches) times the
     records one daemon request actually writes (counted during the
     sweep above), against the sweep's 1-client p50. *)
  Slif_obs.Registry.disable ();
  let run_span () = Slif_obs.Span.with_ "bench.a10.flight" run in
  Slif_obs.Flight.disable ();
  ignore (Slif_obs.Clock.time_n reps run_span);
  let t_all_off = best_of_3 run_span in
  Slif_obs.Flight.enable ();
  ignore (Slif_obs.Clock.time_n reps run_span);
  let t_flight = best_of_3 run_span in
  Slif_obs.Registry.enable ();
  let overhead_flight = pct t_flight t_all_off in
  let cal_reps = if bench_fast then 20_000 else 200_000 in
  let cal_id = Slif_obs.Flight.next_id () in
  let record_ns =
    1e9
    *. List.fold_left min infinity
         (List.init 3 (fun _ ->
              Slif_obs.Clock.time_n cal_reps (fun () ->
                  Slif_obs.Flight.record_span ~id:cal_id ~parent:0
                    ~name:"bench.a10.flight_cal" ~t0_ns:0 ~dur_ns:0 ())))
  in
  Printf.printf
    "flight-recorder ablation (registry off in both runs):\n\
    \  flight off: %.1f us\n\
    \  flight on:  %.1f us  (%+.2f%% raw A/B — noise-dominated, not gated)\n\
    \  ring write: %.0f ns/record (tight loop, best of 3 batches)\n"
    (t_all_off *. 1e6) (t_flight *. 1e6) overhead_flight record_ns;
  Slif_obs.Counter.add "bench.a10.flight_record_ns" (int_of_float record_ns);
  let modeled =
    match (!flight_records_per_req, !p50_c1) with
    | Some rpr, Some p50 when p50 > 0.0 ->
        let pct = 100.0 *. (rpr *. record_ns) /. (p50 *. 1000.0) in
        Printf.printf
          "  daemon hot path: %.1f records/request x %.0f ns = %.2f us of p50 %.0f us \
           -> %+.2f%% always-on overhead\n"
          rpr record_ns
          (rpr *. record_ns /. 1000.0)
          p50 pct;
        Some pct
    | _ -> None
  in
  (match modeled with
  | Some pct ->
      Slif_obs.Counter.add "bench.a10.flight_overhead_bp"
        (int_of_float (Float.max 0.0 (pct *. 100.0)))
  | None -> ());
  if Sys.getenv_opt "SLIF_BENCH_FLIGHT_GATE" <> None then begin
    match modeled with
    | Some pct ->
        let ok = pct <= 2.0 in
        Printf.printf "flight gate: %+.2f%% overhead (ceiling 2.00%%): %s\n" pct
          (if ok then "OK" else "FAIL");
        if not ok then exit 1
    | None -> print_endline "flight gate: sweep produced no sample, nothing to gate"
  end

(* --- A10b: daemon load harness — closed-loop concurrency sweep -------------- *)

(* How many concurrent clients the multi-domain daemon sustains, and
   where it saturates.  The daemon runs in a forked child so the two
   processes' select loops each get the full descriptor budget
   ([Unix.select] rejects fd numbers >= 1024; one process cannot hold
   both ends of ~1000 connections).  The parent drives every
   concurrency level from a single select-multiplexed loop — C
   closed-loop connections, one outstanding request each — and reports
   sustained req/s plus client-side p50/p99 per level.  Every response
   is also checked byte-for-byte against the first one: under load the
   daemon must answer identically, not just quickly. *)

type lconn = {
  lc_fd : Unix.file_descr;
  mutable lc_off : int;  (** bytes of the request line already written *)
  lc_in : Buffer.t;
  mutable lc_t_send : float;
  mutable lc_done : int;
  mutable lc_active : bool;
}

(* select caps fd numbers below 1024; keep headroom for stdio/pipes. *)
let a10b_fd_budget = 960

let a10b_level port line per_conn clients =
  let request = line ^ "\n" in
  let conns =
    List.init clients (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.set_nonblock fd;
        {
          lc_fd = fd;
          lc_off = 0;
          lc_in = Buffer.create 512;
          lc_t_send = 0.0;
          lc_done = 0;
          lc_active = true;
        })
  in
  let total = clients * per_conn in
  let window = Slif_obs.Histogram.window ~capacity:total () in
  let completed = ref 0 in
  let expected = ref None in
  let mismatches = ref 0 in
  let t0 = Slif_obs.Clock.now_us () in
  List.iter (fun c -> c.lc_t_send <- t0) conns;
  let deadline_us = t0 +. 180.0 *. 1e6 in
  let finish c =
    c.lc_active <- false;
    try Unix.close c.lc_fd with Unix.Unix_error _ -> ()
  in
  let on_line c resp =
    let dur = Slif_obs.Clock.now_us () -. c.lc_t_send in
    Slif_obs.Histogram.window_record window dur;
    incr completed;
    (match !expected with
    | None -> expected := Some resp
    | Some e -> if resp <> e then incr mismatches);
    c.lc_done <- c.lc_done + 1;
    if c.lc_done >= per_conn then finish c
    else begin
      c.lc_off <- 0;
      c.lc_t_send <- Slif_obs.Clock.now_us ()
    end
  in
  let drain_lines c =
    let continue = ref true in
    while !continue && c.lc_active do
      let text = Buffer.contents c.lc_in in
      match String.index_opt text '\n' with
      | None -> continue := false
      | Some nl ->
          let resp = String.sub text 0 nl in
          Buffer.clear c.lc_in;
          Buffer.add_substring c.lc_in text (nl + 1) (String.length text - nl - 1);
          on_line c resp
    done
  in
  let chunk = Bytes.create 65536 in
  let timed_out = ref false in
  while !completed < total && not !timed_out do
    if Slif_obs.Clock.now_us () > deadline_us then timed_out := true
    else begin
      let live = List.filter (fun c -> c.lc_active) conns in
      let reads = List.map (fun c -> c.lc_fd) live in
      let writes =
        List.filter_map
          (fun c -> if c.lc_off < String.length request then Some c.lc_fd else None)
          live
      in
      match Unix.select reads writes [] 5.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
          List.iter
            (fun c ->
              if c.lc_active && List.memq c.lc_fd writable then begin
                match
                  Unix.write_substring c.lc_fd request c.lc_off
                    (String.length request - c.lc_off)
                with
                | n -> c.lc_off <- c.lc_off + n
                | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
                | exception Unix.Unix_error _ -> finish c
              end;
              if c.lc_active && List.memq c.lc_fd readable then begin
                match Unix.read c.lc_fd chunk 0 (Bytes.length chunk) with
                | 0 -> finish c
                | n ->
                    Buffer.add_subbytes c.lc_in chunk 0 n;
                    drain_lines c
                | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
                | exception Unix.Unix_error _ -> finish c
              end)
            conns
    end
  done;
  let elapsed_s = (Slif_obs.Clock.now_us () -. t0) /. 1e6 in
  List.iter (fun c -> if c.lc_active then finish c) conns;
  let req_per_s = float_of_int !completed /. Float.max elapsed_s 1e-9 in
  (req_per_s, Slif_obs.Histogram.window_quantiles window, !completed, !mismatches,
   !timed_out)

let a10_load () =
  section "A10b: daemon load harness (closed-loop concurrency sweep)";
  let workers =
    match Sys.getenv_opt "SLIF_BENCH_LOAD_WORKERS" with
    | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 2)
    | None -> 2
  in
  let levels =
    let parse s =
      List.filter_map int_of_string_opt (String.split_on_char ',' (String.trim s))
    in
    match Sys.getenv_opt "SLIF_BENCH_LOAD_CLIENTS" with
    | Some s when parse s <> [] -> parse s
    | _ -> if bench_fast then [ 8; 16 ] else [ 64; 128; 256; 512; 1024 ]
  in
  flush stdout;
  flush stderr;
  (* The daemon runs as a spawned [slif serve] process rather than a
     fork: OCaml 5 forbids [Unix.fork] once domains exist, and earlier
     bench phases spawn them.  A separate process also gives the daemon
     its own select fd budget, independent of the client driver's. *)
  let cli =
    let candidates =
      [
        Filename.concat
          (Filename.dirname Sys.executable_name)
          (Filename.concat ".." (Filename.concat "bin" "slif_cli.exe"));
        Filename.concat "_build"
          (Filename.concat "default" (Filename.concat "bin" "slif_cli.exe"));
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> failwith "a10load: cannot find slif_cli.exe (run under dune)"
  in
  let out_r, out_w = Unix.pipe () in
  let daemon_pid =
    Unix.create_process cli
      [|
        cli; "serve"; "--port"; "0"; "--workers"; string_of_int workers;
        "--lru"; "16";
      |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let port =
    (* First stdout line: "listening on 127.0.0.1:<port>". *)
    let buf = Buffer.create 64 in
    let b = Bytes.create 1 in
    let rec banner () =
      match Unix.read out_r b 0 1 with
      | 0 -> Buffer.contents buf
      | _ ->
          if Bytes.get b 0 = '\n' then Buffer.contents buf
          else begin
            Buffer.add_char buf (Bytes.get b 0);
            banner ()
          end
    in
    let l = banner () in
    Unix.close out_r;
    match String.rindex_opt l ':' with
    | Some i ->
        int_of_string
          (String.trim (String.sub l (i + 1) (String.length l - i - 1)))
    | None -> failwith ("a10load: unexpected daemon banner: " ^ l)
  in
  Fun.protect
        ~finally:(fun () ->
          (try
             let c = Slif_server.Client.connect_tcp ~timeout_ms:10_000 port in
             ignore (Slif_server.Client.request_raw c {|{"op":"shutdown"}|});
             Slif_server.Client.close c
           with _ -> ());
          ignore (try Unix.waitpid [] daemon_pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0)))
        (fun () ->
          (* Prime the LRU so the sweep measures serving, not rebuilds. *)
          let prime = Slif_server.Client.connect_tcp ~timeout_ms:30_000 port in
          ignore (Slif_server.Client.request_raw prime {|{"op":"load","spec":"fuzzy"}|});
          Slif_server.Client.close prime;
          Printf.printf "daemon: spawned slif serve, %d worker domains\n" workers;
          let line = {|{"op":"estimate","spec":"fuzzy"}|} in
          let per_conn_for clients =
            if bench_fast then 5 else max 5 (10_000 / clients)
          in
          let table =
            Slif_util.Table.create
              ~header:
                [ "clients"; "requests"; "req/s"; "p50 us"; "p99 us"; "max us"; "note" ]
          in
          let total_mismatches = ref 0 in
          let results =
            List.map
              (fun requested ->
                let clients = min requested a10b_fd_budget in
                let clamped = clients <> requested in
                let req_per_s, q, completed, mismatches, timed_out =
                  a10b_level port line (per_conn_for clients) clients
                in
                total_mismatches := !total_mismatches + mismatches;
                let note =
                  String.concat " "
                    ((if clamped then
                        [ Printf.sprintf "(clamped from %d: select fd ceiling)" requested ]
                      else [])
                    @ (if mismatches > 0 then
                         [ Printf.sprintf "%d MISMATCHED RESPONSES" mismatches ]
                       else [])
                    @ if timed_out then [ "TIMED OUT" ] else [])
                in
                (match q with
                | Some q ->
                    Slif_obs.Counter.add
                      (Printf.sprintf "bench.a10.load.c%d.req_per_s" requested)
                      (int_of_float req_per_s);
                    Slif_obs.Counter.add
                      (Printf.sprintf "bench.a10.load.c%d.p50_us" requested)
                      (int_of_float q.q_p50);
                    Slif_obs.Counter.add
                      (Printf.sprintf "bench.a10.load.c%d.p99_us" requested)
                      (int_of_float q.q_p99);
                    Slif_util.Table.add_row table
                      [
                        string_of_int clients;
                        string_of_int completed;
                        Printf.sprintf "%.0f" req_per_s;
                        Printf.sprintf "%.0f" q.q_p50;
                        Printf.sprintf "%.0f" q.q_p99;
                        Printf.sprintf "%.0f" q.q_max;
                        note;
                      ]
                | None ->
                    Slif_util.Table.add_row table
                      [ string_of_int clients; "0"; "-"; "-"; "-"; "-"; note ]);
                (requested, req_per_s))
              levels
          in
          Slif_util.Table.print table;
          (* Any response byte differing from the first is a correctness
             failure of the multi-worker daemon, not a perf artifact —
             fail the phase loudly (CI runs this as a smoke). *)
          if !total_mismatches > 0 then
            failwith
              (Printf.sprintf
                 "a10load: %d responses differed across the sweep — the daemon is \
                  not byte-deterministic under load"
                 !total_mismatches);
          (* The saturation point: the level with the highest sustained
             throughput — beyond it extra clients only add queueing. *)
          (match results with
          | [] -> ()
          | (c0, r0) :: rest ->
              let sat_c, sat_r =
                List.fold_left
                  (fun (bc, br) (c, r) -> if r > br then (c, r) else (bc, br))
                  (c0, r0) rest
              in
              Slif_obs.Counter.add "bench.a10.load.saturation_clients" sat_c;
              Printf.printf
                "saturation: throughput peaks at %d clients (%.0f req/s); deeper\n\
                 levels only grow p99 queueing delay\n"
                sat_c sat_r);
          (* Batch amortization: the same work as N single lines in one
             round trip. *)
          let c = Slif_server.Client.connect_tcp ~timeout_ms:30_000 port in
          let n_items = 16 in
          let rounds = if bench_fast then 3 else 20 in
          let t_single =
            Slif_obs.Clock.time_n (rounds * n_items) (fun () ->
                ignore (Slif_server.Client.request_raw c line))
          in
          let item =
            Slif_obs.Json.Obj
              [
                ("op", Slif_obs.Json.String "estimate");
                ("spec", Slif_obs.Json.String "fuzzy");
              ]
          in
          let breq =
            Slif_obs.Json.to_string
              (Slif_server.Client.batch_request (List.init n_items (fun _ -> item)))
          in
          let t_batch =
            Slif_obs.Clock.time_n rounds (fun () ->
                ignore (Slif_server.Client.request_raw c breq))
          in
          Slif_server.Client.close c;
          let single_item_us = t_single *. 1e6 in
          let batch_item_us = t_batch *. 1e6 /. float_of_int n_items in
          Slif_obs.Counter.add "bench.a10.load.single_item_us"
            (int_of_float single_item_us);
          Slif_obs.Counter.add
            (Printf.sprintf "bench.a10.load.batch%d_item_us" n_items)
            (int_of_float batch_item_us);
          Printf.printf
            "batch amortization: %.1f us/item singly vs %.1f us/item in batches of %d\n\
             (the delta is per-line framing + round-trip scheduling, amortized away)\n"
            single_item_us batch_item_us n_items)

(* --- BENCH_obs.json: machine-readable phase timings + counters -------------- *)

let bench_obs_path =
  match Sys.getenv_opt "SLIF_BENCH_OBS" with Some p -> p | None -> "BENCH_obs.json"

let write_bench_obs () =
  let prefix = "span.bench." in
  let phases =
    Slif_obs.Histogram.snapshot ()
    |> List.filter_map (fun (name, (s : Slif_obs.Histogram.summary)) ->
           if String.length name > String.length prefix
              && String.sub name 0 (String.length prefix) = prefix
           then
             let phase =
               String.sub name (String.length prefix)
                 (String.length name - String.length prefix)
             in
             (* Span durations are recorded in microseconds. *)
             Some (phase, Slif_obs.Json.Float (s.sum /. 1e6))
           else None)
  in
  let counters =
    List.map
      (fun (name, v) -> (name, Slif_obs.Json.Int v))
      (Slif_obs.Counter.snapshot ())
  in
  Slif_obs.Json.write_file bench_obs_path
    (Slif_obs.Json.Obj
       [
         ("schema", Slif_obs.Json.String "slif-bench-obs/1");
         ("phase_seconds", Slif_obs.Json.Obj phases);
         ("counters", Slif_obs.Json.Obj counters);
       ]);
  (match Sys.getenv_opt "SLIF_BENCH_TRACE" with
  | Some path -> Slif_obs.Trace.write_file path
  | None -> ());
  (* The bench history ledger: one JSON line per run, appended (and
     git-tracked), so perf regressions are visible as a diff rather
     than an archaeology project.  Headline metrics only — the full
     counter set stays in BENCH_obs.json. *)
  let history_path =
    match Sys.getenv_opt "SLIF_BENCH_HISTORY" with
    | Some p -> p
    | None -> "BENCH_history.jsonl"
  in
  let ts =
    let t = Unix.gmtime (Unix.gettimeofday ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec
  in
  let headline =
    List.filter
      (fun (name, _) ->
        String.length name > 6 && String.sub name 0 6 = "bench.")
      counters
  in
  let record =
    Slif_obs.Json.Obj
      [
        ("schema", Slif_obs.Json.String "slif-bench-history/1");
        ("ts", Slif_obs.Json.String ts);
        ("fast", Slif_obs.Json.Bool bench_fast);
        ("phase_seconds", Slif_obs.Json.Obj phases);
        ("headline", Slif_obs.Json.Obj headline);
      ]
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history_path in
  output_string oc (Slif_obs.Json.to_string record);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d phases, %d counters); appended %s\n" bench_obs_path
    (List.length phases) (List.length counters) history_path

(* --- A5: shared-hardware area (the paper's reference [1]) ------------------ *)

let a5 () =
  section "A5 (ablation): hardware sharing vs naive weight summation";
  print_endline
    "(Section 2.4.3 concedes the summed size weights over-estimate datapath-\n\
    \ heavy ASICs; the reference-[1] refinement shares functional units across\n\
    \ time-multiplexed behaviors)";
  let spec = Specs.Registry.find_exn "fuzzy" in
  let design = Vhdl.Parser.parse spec.source in
  let sem = Vhdl.Sem.build design in
  let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
  let demands = Slif.Hwshare.demands ~techs:Tech.Parts.all sem in
  let table =
    Slif_util.Table.create
      ~header:[ "behaviors on the ASIC"; "naive gates"; "shared gates"; "saving%" ]
  in
  let sets =
    [
      [ "convolve" ];
      [ "convolve"; "evaluate_rule" ];
      [ "convolve"; "evaluate_rule"; "compute_centroid" ];
      [ "convolve"; "evaluate_rule"; "compute_centroid"; "smooth_output"; "clip_output" ];
    ]
  in
  List.iter
    (fun names ->
      let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
      let graph = Slif.Graph.make s in
      let part = Specsyn.Search.seed_partition s in
      List.iter
        (fun name ->
          match Slif.Types.node_by_name s name with
          | Some n -> Slif.Partition.assign_node part ~node:n.n_id (Slif.Partition.Cproc 1)
          | None -> ())
        names;
      let est = Specsyn.Search.estimator graph part in
      let naive = Slif.Estimate.size est (Slif.Partition.Cproc 1) in
      let shared = Slif.Hwshare.size est demands (Slif.Partition.Cproc 1) in
      Slif_util.Table.add_row table
        [
          string_of_int (List.length names);
          Printf.sprintf "%.0f" naive;
          Printf.sprintf "%.0f" shared;
          Printf.sprintf "%.1f" (100.0 *. (naive -. shared) /. naive);
        ])
    sets;
  Slif_util.Table.print table;
  print_endline
    "(the saving grows with the number of co-resident datapath behaviors, as\n\
    \ the paper predicts; a single behavior shares nothing)"

(* --- A12: million-node synthetic graphs ------------------------------------ *)

(* The bundled specifications top out at a few thousand nodes; A12 runs
   the whole pipeline — generate, compact graph build, estimation,
   incremental engine moves, store serialization, lazy open — on
   synthetic graphs up to 10^6 nodes and records per-node figures.  The
   CDFG/ADD comparators cannot consume a synthetic SLIF (they parse
   VHDL), so their density measured on the bundled corpus is reported as
   the projection baseline. *)
let a12 () =
  section "A12 (scale): struct-of-arrays estimation on synthetic million-node graphs";
  let sizes = if bench_fast then [ 10_000; 100_000 ] else [ 10_000; 100_000; 1_000_000 ] in
  (* Comparator density on the bundled corpus: objects (nodes + edges)
     per SLIF node, the ratio the projection line below applies. *)
  let slif_objs = ref 0 and cdfg_objs = ref 0 and add_objs = ref 0 in
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let design = Vhdl.Parser.parse spec.source in
      let sem = Vhdl.Sem.build design in
      let slif = Slif.Build.build sem in
      let stats = Slif.Stats.of_slif slif in
      slif_objs := !slif_objs + stats.Slif.Stats.bv + stats.Slif.Stats.channels;
      let cdfg = Cdfg.Graph.of_design design in
      cdfg_objs := !cdfg_objs + Cdfg.Graph.node_count cdfg + Cdfg.Graph.edge_count cdfg;
      let add = Addfmt.Add.of_design design in
      add_objs := !add_objs + Addfmt.Add.node_count add + Addfmt.Add.edge_count add)
    Specs.Registry.all;
  let cdfg_ratio = float_of_int !cdfg_objs /. float_of_int !slif_objs in
  let add_ratio = float_of_int !add_objs /. float_of_int !slif_objs in
  Printf.printf
    "comparator density (bundled corpus): CDFG %.1fx, ADD %.1fx the SLIF-AG object count\n"
    cdfg_ratio add_ratio;
  let table =
    Slif_util.Table.create
      ~header:
        [ "nodes"; "gen(s)"; "graph(s)"; "est us/node"; "moves/s"; "v1 B/node";
          "v2 B/node"; "lazy open(ms)" ]
  in
  List.iter
    (fun n ->
      let p = Slif_synth.Synth.default_params ~seed:7 ~nodes:n Slif_synth.Synth.Mixed in
      let slif, t_gen =
        Slif_obs.Clock.time (fun () ->
            Slif_util.Pool.with_pool (fun pool -> Slif_synth.Synth.generate ~pool p))
      in
      let graph, t_graph = Slif_obs.Clock.time (fun () -> Slif.Graph.make slif) in
      let part = Specsyn.Search.seed_partition slif in
      let est = Specsyn.Search.estimator graph part in
      let (), t_est =
        Slif_obs.Clock.time (fun () ->
            Array.iter
              (fun (nd : Slif.Types.node) ->
                if Slif.Types.is_process nd then
                  ignore (Slif.Estimate.exectime_us est nd.n_id))
              slif.Slif.Types.nodes)
      in
      let est_us_per_node = t_est *. 1e6 /. float_of_int n in
      (* Exploration proxy at scale: incremental engine move throughput
         (a full greedy sweep is quadratic and would dominate the run). *)
      let engine = Specsyn.Engine.create graph part in
      let rng = Slif_util.Prng.create 42 in
      let n_moves = if bench_fast then 200 else 2_000 in
      let applied = ref 0 in
      let (), t_moves =
        Slif_obs.Clock.time (fun () ->
            for _ = 1 to n_moves do
              match Specsyn.Engine.random_move engine rng with
              | Some m ->
                  ignore (Specsyn.Engine.propose engine m);
                  Specsyn.Engine.commit engine;
                  incr applied
              | None -> ()
            done)
      in
      let moves_per_s =
        if t_moves > 0.0 then float_of_int !applied /. t_moves else 0.0
      in
      let v1 = Slif_store.Store.slif_to_string slif in
      let v2 = Slif_store.Store.slif_to_string ~version:2 slif in
      let v1_bpn = float_of_int (String.length v1) /. float_of_int n in
      let v2_bpn = float_of_int (String.length v2) /. float_of_int n in
      (* The daemon's admission path: map the container, answer metadata
         without decoding a single graph section. *)
      let path = Filename.temp_file "slif_a12" ".slifstore" in
      Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      @@ fun () ->
      Slif_store.Store.save_slif ~path ~version:2 slif;
      let decodes_before = Slif_obs.Counter.get "store.lazy.full_decode" in
      let handle, t_open =
        Slif_obs.Clock.time (fun () ->
            match Slif_store.Lazy_store.open_file path with
            | Ok h -> h
            | Error err -> failwith (Slif_store.Store.error_message err))
      in
      if (Slif_store.Lazy_store.meta handle).Slif_store.Store.vm_nodes <> n then
        failwith "a12: META node count mismatch";
      if Slif_obs.Counter.get "store.lazy.full_decode" <> decodes_before then
        failwith "a12: metadata-only open forced a full decode";
      let tag v = Printf.sprintf "bench.a12.n%d.%s" n v in
      Slif_obs.Counter.add (tag "gen_ms") (int_of_float (t_gen *. 1e3));
      Slif_obs.Counter.add (tag "graph_ms") (int_of_float (t_graph *. 1e3));
      Slif_obs.Counter.add (tag "est_ns_per_node") (int_of_float (est_us_per_node *. 1e3));
      Slif_obs.Counter.add (tag "moves_per_s") (int_of_float moves_per_s);
      Slif_obs.Counter.add (tag "v1_bytes_per_node") (int_of_float v1_bpn);
      Slif_obs.Counter.add (tag "v2_bytes_per_node") (int_of_float v2_bpn);
      Slif_obs.Counter.add (tag "lazy_open_us") (int_of_float (t_open *. 1e6));
      Slif_util.Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.3f" t_gen;
          Printf.sprintf "%.3f" t_graph;
          Printf.sprintf "%.3f" est_us_per_node;
          Printf.sprintf "%.0f" moves_per_s;
          Printf.sprintf "%.1f" v1_bpn;
          Printf.sprintf "%.1f" v2_bpn;
          Printf.sprintf "%.2f" (t_open *. 1e3);
        ])
    sizes;
  Slif_util.Table.print table;
  Printf.printf
    "(projection: at the largest size a CDFG would carry ~%.1fx and an ADD ~%.1fx\n\
    \ as many objects as the SLIF-AG, at the density measured on the bundled corpus)\n"
    cdfg_ratio add_ratio

let () =
  print_endline "SLIF reproduction benchmark harness";
  print_endline "(see DESIGN.md section 3 for the experiment index)";
  Slif_obs.Registry.enable ();
  (* SLIF_BENCH_ONLY=a8,r4 restricts the run to the named phases (the CI
     bench smoke step runs SLIF_BENCH_ONLY=a8 SLIF_BENCH_FAST=1). *)
  let only =
    Option.map
      (fun s -> List.map String.trim (String.split_on_char ',' s))
      (Sys.getenv_opt "SLIF_BENCH_ONLY")
  in
  let phase name f =
    match only with
    | Some names when not (List.mem name names) -> ()
    | _ -> Slif_obs.Span.with_ ("bench." ^ name) f
  in
  phase "figure4" figure4;
  phase "r1_r2" r1_r2;
  phase "r3" r3;
  phase "r4" r4;
  phase "a1" a1;
  phase "a2" a2;
  phase "a3" a3;
  phase "a4" a4;
  phase "a5" a5;
  phase "a6" a6;
  phase "a7" a7;
  phase "a8" a8;
  phase "a9" a9;
  phase "a10" a10;
  phase "a10load" a10_load;
  phase "a11" a11;
  phase "a12" a12;
  write_bench_obs ();
  print_endline "\ndone."
