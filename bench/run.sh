#!/bin/sh
# Regenerate the full benchmark report and BENCH_obs.json (machine-readable
# per-phase timings + counters) in the repository root, so perf numbers are
# reproducible in one command:
#
#   bench/run.sh                          # writes ./BENCH_obs.json
#   SLIF_BENCH_OBS=out.json bench/run.sh  # choose the output path
#   SLIF_BENCH_TRACE=t.json bench/run.sh  # also dump a Chrome/Perfetto trace
set -e
cd "$(dirname "$0")/.."
dune build bench/main.exe
exec ./_build/default/bench/main.exe "$@"
