(* slif — command-line front end to the SLIF / SpecSyn reproduction.

   Subcommands:
     dump-spec   print a bundled benchmark specification (VHDL subset)
     build       parse + build + annotate; print stats, text form, or DOT
     estimate    metrics for a named partition heuristic
     partition   run a partitioning algorithm and report the design
     compare     SLIF vs ADD vs CDFG format sizes
     figure4     regenerate the paper's Figure 4 table *)

open Cmdliner

let spec_names = List.map (fun s -> s.Specs.Registry.spec_name) Specs.Registry.all

let load_spec name =
  match Specs.Registry.find name with
  | Some s -> s
  | None ->
      Printf.eprintf "unknown spec %S (expected one of: %s)\n" name
        (String.concat ", " spec_names);
      exit 1

let read_source = function
  | `Bundled spec -> (load_spec spec).Specs.Registry.source
  | `File path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let source_of ~file ~spec =
  match (file, spec) with
  | Some path, _ -> `File path
  | None, Some s -> `Bundled s
  | None, None ->
      prerr_endline "specify a bundled spec name or --file";
      exit 1

(* A source whose first token is the word "spec" is SpecCharts-lite and is
   lowered to the VHDL subset; anything else parses as VHDL directly. *)
let parse_any source =
  match Vhdl.Lexer.tokenize source with
  | (Vhdl.Token.Ident "spec", _) :: _ ->
      Spc.Lower.design_of_spec (Spc.Parser.parse source)
  | _ -> Vhdl.Parser.parse source

let annotated_slif ?profile source =
  let design = parse_any source in
  let sem = Vhdl.Sem.build design in
  let slif = Slif.Build.build ?profile sem in
  (design, sem, Slif.Annotate.run ?profile ~techs:Tech.Parts.all sem slif)

let load_profile = function
  | None -> None
  | Some path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some (Flow.Profile.of_string s)

(* [--auto-profile] runs the interpreter on the design under pseudo-random
   stimuli and uses the measured branch probabilities and loop trip
   counts. *)
let resolve_profile ~auto ~profile source =
  match (load_profile profile, auto) with
  | Some p, _ -> Some p
  | None, false -> None
  | None, true ->
      let sem = Vhdl.Sem.build (parse_any source) in
      Some (Flow.Profiler.auto ~runs:5 ~seed:1 sem)

(* --- Observability flags (accepted by every subcommand) ------------------- *)

type obs_opts = { trace : string option; metrics : string option; verbose : bool }

let obs_term =
  let trace =
    let doc =
      "Record spans of the run and write them to $(docv) as Chrome trace_event \
       JSON (load in chrome://tracing or https://ui.perfetto.dev)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc =
      "Write counters and timing histograms of the run to $(docv) as JSON \
       (use a .jsonl extension for one metric per line)."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let verbose =
    let doc = "Print a counter/histogram summary to stderr after the command." in
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc)
  in
  let combine trace metrics verbose = { trace; metrics; verbose } in
  Term.(const combine $ trace $ metrics $ verbose)

let is_jsonl path = Filename.check_suffix path ".jsonl"

(* Run a subcommand body under the observability registry: recording is
   enabled only when one of the flags asks for output, so the default
   path keeps the probes down to a single bool check each. *)
let with_obs opts f =
  let active = opts.trace <> None || opts.metrics <> None || opts.verbose in
  if active then Slif_obs.Registry.enable ();
  let export () =
    if active then begin
      Slif_obs.Registry.disable ();
      Option.iter Slif_obs.Trace.write_file opts.trace;
      Option.iter
        (fun path ->
          if is_jsonl path then Slif_obs.Metrics.write_jsonl path
          else Slif_obs.Metrics.write_file path)
        opts.metrics;
      if opts.verbose then prerr_string (Slif_obs.Metrics.summary_string ())
    end
  in
  (* A bad --trace/--metrics path should not mask the subcommand's work. *)
  let export () =
    match export () with
    | () -> 0
    | exception Sys_error msg ->
        Printf.eprintf "slif: cannot write observability output: %s\n" msg;
        1
  in
  match f () with
  | code ->
      let ecode = export () in
      if code = 0 then ecode else code
  | exception e ->
      ignore (export ());
      raise e

(* --- Common arguments ---------------------------------------------------- *)

let spec_arg =
  let doc = "Bundled benchmark spec (ans, ether, fuzzy, vol)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)

let file_arg =
  let doc = "Read the specification from $(docv) instead of a bundled spec." in
  Arg.(value & opt (some file) None & info [ "file"; "f" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc = "Branch-probability file (see lib/flow/profile.mli for syntax)." in
  Arg.(value & opt (some file) None & info [ "profile" ] ~docv:"FILE" ~doc)

let auto_profile_arg =
  let doc = "Derive branch probabilities by interpreting the design under \
             pseudo-random stimuli instead of using static defaults." in
  Arg.(value & flag & info [ "auto-profile" ] ~doc)

(* --- dump-spec ------------------------------------------------------------ *)

let dump_spec_cmd =
  let run obs spec =
    with_obs obs @@ fun () ->
    print_string (load_spec spec).Specs.Registry.source;
    0
  in
  let spec =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc:"Spec name.")
  in
  Cmd.v
    (Cmd.info "dump-spec" ~doc:"Print a bundled benchmark specification.")
    Term.(const run $ obs_term $ spec)

(* --- build ----------------------------------------------------------------- *)

let build_cmd =
  let run obs spec file profile auto dot text annotations =
    with_obs obs @@ fun () ->
    let source = read_source (source_of ~file ~spec) in
    let profile = resolve_profile ~auto ~profile source in
    let _, _, slif = annotated_slif ?profile source in
    if dot then print_string (Slif.Dot.to_dot ~annotations slif)
    else if text then print_string (Slif.Text.to_string slif)
    else begin
      Printf.printf "%s: %s\n" slif.Slif.Types.design_name
        (Slif.Stats.to_string (Slif.Stats.of_slif slif));
      Array.iter
        (fun (n : Slif.Types.node) ->
          let kind =
            match n.n_kind with
            | Slif.Types.Behavior { is_process = true } -> "process "
            | Slif.Types.Behavior _ -> "behavior"
            | Slif.Types.Variable _ -> "variable"
          in
          Printf.printf "  %-8s %s\n" kind n.n_name)
        slif.Slif.Types.nodes
    end;
    0
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of stats.") in
  let text = Arg.(value & flag & info [ "text" ] ~doc:"Emit the SLIF text serialization.") in
  let ann =
    Arg.(value & flag & info [ "annotations" ] ~doc:"Include annotations in DOT output.")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build (and annotate) the SLIF of a specification.")
    Term.(
      const run $ obs_term $ spec_arg $ file_arg $ profile_arg $ auto_profile_arg $ dot
      $ text $ ann)

(* --- estimate / partition --------------------------------------------------- *)

let algo_conv =
  let parse = function
    | "random" -> Ok (Specsyn.Explore.Random 200)
    | "greedy" -> Ok Specsyn.Explore.Greedy
    | "gm" | "group-migration" -> Ok Specsyn.Explore.Group_migration
    | "sa" | "annealing" -> Ok (Specsyn.Explore.Annealing Specsyn.Annealing.default_params)
    | "cluster" | "clustering" -> Ok (Specsyn.Explore.Clustering 4)
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt (Specsyn.Explore.algo_name a))

let algo_arg =
  let doc = "Partitioning algorithm: random, greedy, gm, sa, cluster." in
  Arg.(value & opt algo_conv Specsyn.Explore.Greedy & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)

let run_algo algo problem =
  match algo with
  | Specsyn.Explore.Random restarts -> Specsyn.Random_part.run ~restarts problem
  | Specsyn.Explore.Greedy -> Specsyn.Greedy.run problem
  | Specsyn.Explore.Group_migration -> Specsyn.Group_migration.run problem
  | Specsyn.Explore.Annealing params -> Specsyn.Annealing.run ~params problem
  | Specsyn.Explore.Clustering k -> Specsyn.Cluster.run ~k problem

let parse_deadlines deadlines =
  List.map
    (fun spec ->
      match String.split_on_char '=' spec with
      | [ name; us ] -> (
          match float_of_string_opt us with
          | Some v -> (name, v)
          | None ->
              Printf.eprintf "bad deadline %S (expected name=microseconds)\n" spec;
              exit 1)
      | _ ->
          Printf.eprintf "bad deadline %S (expected name=microseconds)\n" spec;
          exit 1)
    deadlines

let partition_cmd =
  let run obs spec file profile auto algo explore pareto jobs no_timings deadlines save
      load_ =
    with_obs obs @@ fun () ->
    if jobs < 1 then begin
      prerr_endline "slif: --jobs must be at least 1";
      exit 1
    end;
    let source = read_source (source_of ~file ~spec) in
    let profile = resolve_profile ~auto ~profile source in
    let _, _, slif = annotated_slif ?profile source in
    let constraints = { Specsyn.Cost.deadlines_us = parse_deadlines deadlines } in
    if explore then begin
      let entries = Specsyn.Explore.run ~jobs ~constraints slif in
      print_endline (Specsyn.Report.explore_report ~timings:(not no_timings) entries)
    end
    else if pareto then begin
      let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
      let graph = Slif.Graph.make s in
      let points = Specsyn.Pareto.sweep ~jobs ~constraints graph in
      let table =
        Slif_util.Table.create
          ~header:[ "worst exectime (us)"; "hw gates"; "sw bytes"; "time weight" ]
      in
      List.iter
        (fun (p : Specsyn.Pareto.point) ->
          Slif_util.Table.add_row table
            [
              Printf.sprintf "%.1f" p.worst_exectime_us;
              Printf.sprintf "%.0f" p.hw_gates;
              Printf.sprintf "%.0f" p.sw_bytes;
              Printf.sprintf "%.1f" p.weight_time;
            ])
        points;
      print_endline "Pareto front of the performance/area trade-off:";
      Slif_util.Table.print table
    end
    else begin
      let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
      let graph = Slif.Graph.make s in
      let part, header =
        match load_ with
        | Some path ->
            let ic = open_in_bin path in
            let text = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let part = Slif.Decision.of_string s text in
            let note =
              match Slif.Decision.note text with
              | Some n -> Printf.sprintf " (note: %s)" n
              | None -> ""
            in
            (part, Printf.sprintf "recorded decision from %s%s\n" path note)
        | None ->
            let problem = Specsyn.Search.problem ~constraints graph in
            let solution = run_algo algo problem in
            ( solution.Specsyn.Search.part,
              Printf.sprintf "algorithm=%s cost=%.4f partitions-evaluated=%d\n"
                (Specsyn.Explore.algo_name algo) solution.Specsyn.Search.cost
                solution.Specsyn.Search.evaluated )
      in
      let est = Specsyn.Search.estimator graph part in
      print_string header;
      print_newline ();
      print_endline (Specsyn.Report.partition_report ~constraints est);
      match save with
      | Some path ->
          let note = "produced by slif partition" in
          let oc = open_out path in
          output_string oc (Slif.Decision.to_string ~note part);
          close_out oc;
          Printf.printf "decision recorded to %s\n" path
      | None -> ()
    end;
    0
  in
  let explore =
    Arg.(value & flag & info [ "explore" ] ~doc:"Sweep all stock allocations and algorithms.")
  in
  let pareto =
    Arg.(value & flag
         & info [ "pareto" ] ~doc:"Report the Pareto front of the performance/area trade-off.")
  in
  let jobs =
    let doc =
      "Run the --explore/--pareto sweep on $(docv) domains.  The result is \
       bit-identical for every value (each task derives its own PRNG stream); only \
       the wall-clock changes.  Defaults to the recommended domain count of the \
       machine."
    in
    Arg.(value
         & opt int (Slif_util.Pool.default_jobs ())
         & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let no_timings =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Omit the wall-clock columns from the --explore report, making the \
                   output reproducible across runs and -j values.")
  in
  let deadlines =
    Arg.(value & opt_all string []
         & info [ "deadline"; "d" ] ~docv:"PROC=US"
             ~doc:"Execution-time constraint on a process, e.g. --deadline fuzzymain=2000. \
                   Repeatable.")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE" ~doc:"Record the resulting decision to $(docv).")
  in
  let load_ =
    Arg.(value & opt (some file) None
         & info [ "load" ] ~docv:"FILE" ~doc:"Replay a recorded decision instead of searching.")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Partition a specification onto a processor-ASIC architecture.")
    Term.(
      const run $ obs_term $ spec_arg $ file_arg $ profile_arg $ auto_profile_arg
      $ algo_arg $ explore $ pareto $ jobs $ no_timings $ deadlines $ save $ load_)

let estimate_cmd =
  let run obs spec file profile auto bounds =
    with_obs obs @@ fun () ->
    let source = read_source (source_of ~file ~spec) in
    let profile = resolve_profile ~auto ~profile source in
    let _, _, slif = annotated_slif ?profile source in
    let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
    let graph = Slif.Graph.make s in
    let part = Specsyn.Search.seed_partition s in
    let est = Specsyn.Search.estimator graph part in
    print_endline "all-software partition (everything on the cpu):";
    print_endline (Specsyn.Report.partition_report est);
    if bounds then begin
      (* The paper's min/max access-frequency extension: best- and
         worst-case execution times alongside the average. *)
      let est_min = Slif.Estimate.create ~mode:Slif.Estimate.Min ~recursion_depth:4 graph part in
      let est_max = Slif.Estimate.create ~mode:Slif.Estimate.Max ~recursion_depth:4 graph part in
      let table =
        Slif_util.Table.create ~header:[ "process"; "min(us)"; "avg(us)"; "max(us)" ]
      in
      Array.iter
        (fun (n : Slif.Types.node) ->
          if Slif.Types.is_process n then
            Slif_util.Table.add_row table
              [
                n.n_name;
                Printf.sprintf "%.2f" (Slif.Estimate.exectime_us est_min n.n_id);
                Printf.sprintf "%.2f" (Slif.Estimate.exectime_us est n.n_id);
                Printf.sprintf "%.2f" (Slif.Estimate.exectime_us est_max n.n_id);
              ])
        s.Slif.Types.nodes;
      print_endline "\nexecution-time bounds (min / avg / max access frequencies):";
      Slif_util.Table.print table
    end;
    0
  in
  let bounds =
    Arg.(value & flag
         & info [ "bounds" ]
             ~doc:"Also report best/worst-case execution times from the min/max \
                   access-frequency annotations.")
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Report metrics for the all-software seed partition.")
    Term.(const run $ obs_term $ spec_arg $ file_arg $ profile_arg $ auto_profile_arg $ bounds)

(* --- compare ----------------------------------------------------------------- *)

let compare_cmd =
  let run obs spec file =
    with_obs obs @@ fun () ->
    let source = read_source (source_of ~file ~spec) in
    let design = parse_any source in
    let sem = Vhdl.Sem.build design in
    let slif = Slif.Build.build sem in
    let stats = Slif.Stats.of_slif slif in
    let cdfg = Cdfg.Graph.of_design design in
    let add = Addfmt.Add.of_design design in
    let table = Slif_util.Table.create ~header:[ "format"; "nodes"; "edges"; "n^2" ] in
    let row name n e =
      Slif_util.Table.add_row table
        [ name; string_of_int n; string_of_int e; string_of_int (n * n) ]
    in
    row "SLIF-AG" stats.Slif.Stats.bv stats.Slif.Stats.channels;
    row "ADD/VT" (Addfmt.Add.node_count add) (Addfmt.Add.edge_count add);
    row "CDFG" (Cdfg.Graph.node_count cdfg) (Cdfg.Graph.edge_count cdfg);
    Slif_util.Table.print table;
    0
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare SLIF size against the ADD and CDFG formats.")
    Term.(const run $ obs_term $ spec_arg $ file_arg)

(* --- figure4 ------------------------------------------------------------------- *)

let figure4_cmd =
  let run obs =
    with_obs obs @@ fun () ->
    let table =
      Slif_util.Table.create
        ~header:[ ""; "Lines"; "BV"; "C"; "T-slif(s)"; "T-est(s)"; "parts/s" ]
    in
    List.iter
      (fun (spec : Specs.Registry.spec) ->
        Slif_obs.Span.with_ "figure4.spec" ~args:[ ("spec", spec.spec_name) ]
        @@ fun () ->
        let build () =
          let design = Vhdl.Parser.parse spec.source in
          let sem = Vhdl.Sem.build design in
          Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem)
        in
        let slif, t_slif = Slif_obs.Clock.time build in
        let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
        let graph = Slif.Graph.make s in
        let part = Specsyn.Search.seed_partition s in
        let estimate () =
          let est = Specsyn.Search.estimator graph part in
          Array.iter
            (fun (n : Slif.Types.node) ->
              if Slif.Types.is_process n then
                ignore (Slif.Estimate.exectime_us est n.n_id))
            s.Slif.Types.nodes;
          ignore (Slif.Estimate.size est (Slif.Partition.Cproc 0));
          ignore (Slif.Estimate.io_pins est (Slif.Partition.Cproc 0));
          ignore (Slif.Estimate.bus_bitrate_mbps est 0)
        in
        let (), t_est = Slif_obs.Clock.time estimate in
        (* The paper's point is that T-est makes interactive exploration
           feasible (experiment R4): report the partitions-per-second a
           greedy search actually achieves on this spec. *)
        let problem = Specsyn.Search.problem graph in
        let solution, t_part = Slif_obs.Clock.time (fun () -> Specsyn.Greedy.run problem) in
        let parts_per_s =
          if t_part > 0.0 then
            float_of_int solution.Specsyn.Search.evaluated /. t_part
          else 0.0
        in
        let stats = Slif.Stats.of_slif slif in
        Slif_util.Table.add_row table
          [
            spec.spec_name;
            string_of_int (Specs.Registry.line_count spec);
            string_of_int stats.Slif.Stats.bv;
            string_of_int stats.Slif.Stats.channels;
            Printf.sprintf "%.4f" t_slif;
            Printf.sprintf "%.6f" t_est;
            Printf.sprintf "%.0f" parts_per_s;
          ])
      Specs.Registry.all;
    Slif_util.Table.print table;
    0
  in
  Cmd.v
    (Cmd.info "figure4" ~doc:"Regenerate the paper's Figure 4 results table.")
    Term.(const run $ obs_term)

let main_cmd =
  let doc = "SLIF: a specification-level intermediate format for system design" in
  Cmd.group
    (Cmd.info "slif" ~version:"1.0.0" ~doc)
    [ dump_spec_cmd; build_cmd; estimate_cmd; partition_cmd; compare_cmd; figure4_cmd ]

let () = exit (Cmd.eval' main_cmd)
