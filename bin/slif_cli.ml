(* slif — command-line front end to the SLIF / SpecSyn reproduction.

   Subcommands:
     dump-spec   print a bundled benchmark specification (VHDL subset)
     build       parse + build + annotate; print stats, text form, or DOT
     estimate    metrics for a named partition heuristic
     partition   run a partitioning algorithm and report the design
     compare     SLIF vs ADD vs CDFG format sizes
     figure4     regenerate the paper's Figure 4 table
     store       write / inspect persistent SLIF store files
     serve       long-running query daemon (newline-delimited JSON)

   The query subcommands (build, estimate, partition) and the daemon share
   one implementation, [Slif_server.Ops], so their outputs cannot drift
   apart. *)

open Cmdliner
module Ops = Slif_server.Ops
module Store = Slif_store.Store

let spec_names = List.map (fun s -> s.Specs.Registry.spec_name) Specs.Registry.all

(* Every user-facing failure funnels through this: one line on stderr,
   exit code 1.  No raw exception ever reaches the terminal. *)
exception Fail of string

let failf fmt = Printf.ksprintf (fun msg -> raise (Fail msg)) fmt

let guarded f =
  match f () with
  | code -> code
  | exception Fail msg ->
      Printf.eprintf "slif: %s\n" msg;
      1
  | exception Sys_error msg ->
      Printf.eprintf "slif: %s\n" msg;
      1
  | exception Store.Store_error err ->
      Printf.eprintf "slif: %s\n" (Store.error_message err);
      1
  | exception Failure msg ->
      Printf.eprintf "slif: %s\n" msg;
      1

let load_spec name =
  match Specs.Registry.find name with
  | Some s -> s
  | None ->
      failf "unknown spec %S (expected one of: %s)" name (String.concat ", " spec_names)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_source = function
  | `Bundled spec -> (load_spec spec).Specs.Registry.source
  | `File path -> read_file path

let source_of ~file ~spec =
  match (file, spec) with
  | Some path, _ -> `File path
  | None, Some s -> `Bundled s
  | None, None -> failf "specify a bundled spec name or --file"

(* [--auto-profile] runs the interpreter on the design under pseudo-random
   stimuli and uses the measured branch probabilities and loop trip
   counts.  The profile travels as text — the same form the cache key
   hashes — so the cached and uncached paths see identical inputs. *)
let resolve_profile_text ~auto ~profile source =
  match profile with
  | Some path -> Some (read_file path)
  | None when auto ->
      let sem = Vhdl.Sem.build (Ops.parse_any source) in
      Some (Flow.Profile.to_string (Flow.Profiler.auto ~runs:5 ~seed:1 sem))
  | None -> None

let annotated ?cache_dir ~auto ~profile source =
  let profile_text = resolve_profile_text ~auto ~profile source in
  Ops.annotated ?cache_dir ?profile_text source

(* --- Observability flags (accepted by every subcommand) ------------------- *)

type obs_opts = { trace : string option; metrics : string option; verbose : bool }

let obs_term =
  let trace =
    let doc =
      "Record spans of the run and write them to $(docv) as Chrome trace_event \
       JSON (load in chrome://tracing or https://ui.perfetto.dev)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc =
      "Write counters and timing histograms of the run to $(docv) as JSON \
       (use a .jsonl extension for one metric per line)."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let verbose =
    let doc = "Print a counter/histogram summary to stderr after the command." in
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc)
  in
  let combine trace metrics verbose = { trace; metrics; verbose } in
  Term.(const combine $ trace $ metrics $ verbose)

let is_jsonl path = Filename.check_suffix path ".jsonl"

(* Run a subcommand body under the observability registry: recording is
   enabled only when one of the flags asks for output, so the default
   path keeps the probes down to a single bool check each. *)
let with_obs opts f =
  let f () = guarded f in
  let active = opts.trace <> None || opts.metrics <> None || opts.verbose in
  if active then Slif_obs.Registry.enable ();
  let export () =
    if active then begin
      Slif_obs.Registry.disable ();
      Option.iter Slif_obs.Trace.write_file opts.trace;
      Option.iter
        (fun path ->
          if is_jsonl path then Slif_obs.Metrics.write_jsonl path
          else Slif_obs.Metrics.write_file path)
        opts.metrics;
      if opts.verbose then prerr_string (Slif_obs.Metrics.summary_string ())
    end
  in
  (* A bad --trace/--metrics path should not mask the subcommand's work. *)
  let export () =
    match export () with
    | () -> 0
    | exception Sys_error msg ->
        Printf.eprintf "slif: cannot write observability output: %s\n" msg;
        1
  in
  match f () with
  | code ->
      let ecode = export () in
      if code = 0 then ecode else code
  | exception e ->
      ignore (export ());
      raise e

(* --- Common arguments ---------------------------------------------------- *)

let spec_arg =
  let doc = "Bundled benchmark spec (ans, ether, fuzzy, vol)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)

(* Deliberately [string], not [Arg.file]: a missing path must flow
   through [guarded] and exit with our one-line diagnostic. *)
let file_arg =
  let doc = "Read the specification from $(docv) instead of a bundled spec." in
  Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc = "Branch-probability file (see lib/flow/profile.mli for syntax)." in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let auto_profile_arg =
  let doc = "Derive branch probabilities by interpreting the design under \
             pseudo-random stimuli instead of using static defaults." in
  Arg.(value & flag & info [ "auto-profile" ] ~doc)

let cache_dir_arg =
  let doc =
    "Cache annotated SLIFs in $(docv) as store files keyed by content \
     hash of (source, profile, technology catalog): the second run of the \
     same inputs loads instead of re-annotating."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

(* --- dump-spec ------------------------------------------------------------ *)

let dump_spec_cmd =
  let run obs spec =
    with_obs obs @@ fun () ->
    print_string (load_spec spec).Specs.Registry.source;
    0
  in
  let spec =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc:"Spec name.")
  in
  Cmd.v
    (Cmd.info "dump-spec" ~doc:"Print a bundled benchmark specification.")
    Term.(const run $ obs_term $ spec)

(* --- build ----------------------------------------------------------------- *)

let build_cmd =
  let run obs spec file profile auto cache_dir dot text annotations =
    with_obs obs @@ fun () ->
    let source = read_source (source_of ~file ~spec) in
    let slif = annotated ?cache_dir ~auto ~profile source in
    if dot then print_string (Slif.Dot.to_dot ~annotations slif)
    else if text then print_string (Slif.Text.to_string slif)
    else print_string (Ops.build_stats_output slif);
    0
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of stats.") in
  let text = Arg.(value & flag & info [ "text" ] ~doc:"Emit the SLIF text serialization.") in
  let ann =
    Arg.(value & flag & info [ "annotations" ] ~doc:"Include annotations in DOT output.")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build (and annotate) the SLIF of a specification.")
    Term.(
      const run $ obs_term $ spec_arg $ file_arg $ profile_arg $ auto_profile_arg
      $ cache_dir_arg $ dot $ text $ ann)

(* --- estimate / partition --------------------------------------------------- *)

let algo_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Ops.algo_of_string s) in
  Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt (Specsyn.Explore.algo_name a))

let algo_arg =
  let doc = "Partitioning algorithm: random, greedy, gm, sa, cluster." in
  Arg.(value & opt algo_conv Specsyn.Explore.Greedy & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)

let parse_deadlines deadlines =
  List.map
    (fun spec ->
      match Ops.parse_deadline spec with Ok d -> d | Error msg -> failf "%s" msg)
    deadlines

let partition_cmd =
  let run obs spec file profile auto cache_dir algo explore pareto jobs chunk no_timings
      deadlines save load_ =
    with_obs obs @@ fun () ->
    if jobs < 1 then failf "--jobs must be at least 1";
    if chunk < 0 then failf "--chunk must be at least 1 (or 0 for the heuristic)";
    let chunk = if chunk >= 1 then Some chunk else None in
    let source = read_source (source_of ~file ~spec) in
    let slif = annotated ?cache_dir ~auto ~profile source in
    let constraints = Ops.constraints_of_deadlines (parse_deadlines deadlines) in
    if explore then
      print_string
        (Ops.explore_output ~jobs ?chunk ~timings:(not no_timings) ~constraints slif)
    else if pareto then begin
      let s = Ops.apply_proc_asic slif in
      let graph = Slif.Graph.make s in
      let points = Specsyn.Pareto.sweep ~jobs ?chunk ~constraints graph in
      let table =
        Slif_util.Table.create
          ~header:[ "worst exectime (us)"; "hw gates"; "sw bytes"; "time weight" ]
      in
      List.iter
        (fun (p : Specsyn.Pareto.point) ->
          Slif_util.Table.add_row table
            [
              Printf.sprintf "%.1f" p.worst_exectime_us;
              Printf.sprintf "%.0f" p.hw_gates;
              Printf.sprintf "%.0f" p.sw_bytes;
              Printf.sprintf "%.1f" p.weight_time;
            ])
        points;
      print_endline "Pareto front of the performance/area trade-off:";
      Slif_util.Table.print table
    end
    else begin
      (match load_ with
      | Some path ->
          let s = Ops.apply_proc_asic slif in
          let text =
            match Store.read_file path with
            | Ok text -> text
            | Error err -> failf "%s" (Store.error_message err)
          in
          let part, note =
            match Store.decision_of_string s text with
            | Ok (part, note) -> (part, note)
            | Error Store.Bad_magic ->
                (* Pre-store decisions used a line-oriented text format;
                   keep replaying those. *)
                (Slif.Decision.of_string s text, Slif.Decision.note text)
            | Error err -> failf "%s" (Store.error_message err)
          in
          let note = match note with Some n -> Printf.sprintf " (note: %s)" n | None -> "" in
          Printf.printf "recorded decision from %s%s\n" path note;
          print_newline ();
          print_string (Ops.partition_report_for ~constraints s part)
      | None ->
          let output, part = Ops.partition_output ~algo ~constraints slif in
          print_string output;
          (match save with
          | Some path ->
              Store.save_decision ~path ~note:"produced by slif partition" part;
              Printf.printf "decision recorded to %s\n" path
          | None -> ()));
      ()
    end;
    0
  in
  let explore =
    Arg.(value & flag & info [ "explore" ] ~doc:"Sweep all stock allocations and algorithms.")
  in
  let pareto =
    Arg.(value & flag
         & info [ "pareto" ] ~doc:"Report the Pareto front of the performance/area trade-off.")
  in
  let jobs =
    let doc =
      "Run the --explore/--pareto sweep on $(docv) domains.  The result is \
       bit-identical for every value (each task derives its own PRNG stream); only \
       the wall-clock changes.  Defaults to the recommended domain count of the \
       machine."
    in
    Arg.(value
         & opt int (Slif_util.Pool.default_jobs ())
         & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let chunk =
    let doc =
      "Slice multi-restart work into contiguous chunks of $(docv) restarts \
       (points, for --pareto).  0 picks the built-in heuristic (about four \
       chunks per job, clamped to 1..64).  The result is bit-identical for \
       every value; only load balancing changes."
    in
    Arg.(value & opt int 0 & info [ "chunk" ] ~docv:"N" ~doc)
  in
  let no_timings =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Omit the wall-clock columns from the --explore report, making the \
                   output reproducible across runs and -j values.")
  in
  let deadlines =
    Arg.(value & opt_all string []
         & info [ "deadline"; "d" ] ~docv:"PROC=US"
             ~doc:"Execution-time constraint on a process, e.g. --deadline fuzzymain=2000. \
                   Repeatable.")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE"
             ~doc:"Record the resulting decision to $(docv) (store container format).")
  in
  let load_ =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"FILE"
             ~doc:"Replay a recorded decision instead of searching (store container or \
                   legacy text format).")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Partition a specification onto a processor-ASIC architecture.")
    Term.(
      const run $ obs_term $ spec_arg $ file_arg $ profile_arg $ auto_profile_arg
      $ cache_dir_arg $ algo_arg $ explore $ pareto $ jobs $ chunk $ no_timings
      $ deadlines $ save $ load_)

let estimate_cmd =
  let run obs spec file profile auto cache_dir bounds =
    with_obs obs @@ fun () ->
    let source = read_source (source_of ~file ~spec) in
    let slif = annotated ?cache_dir ~auto ~profile source in
    print_string (Ops.estimate_output ~bounds slif);
    0
  in
  let bounds =
    Arg.(value & flag
         & info [ "bounds" ]
             ~doc:"Also report best/worst-case execution times from the min/max \
                   access-frequency annotations.")
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Report metrics for the all-software seed partition.")
    Term.(
      const run $ obs_term $ spec_arg $ file_arg $ profile_arg $ auto_profile_arg
      $ cache_dir_arg $ bounds)

(* --- compare ----------------------------------------------------------------- *)

let compare_cmd =
  let run obs spec file =
    with_obs obs @@ fun () ->
    let source = read_source (source_of ~file ~spec) in
    let design = Ops.parse_any source in
    let sem = Vhdl.Sem.build design in
    let slif = Slif.Build.build sem in
    let stats = Slif.Stats.of_slif slif in
    let cdfg = Cdfg.Graph.of_design design in
    let add = Addfmt.Add.of_design design in
    let table = Slif_util.Table.create ~header:[ "format"; "nodes"; "edges"; "n^2" ] in
    let row name n e =
      Slif_util.Table.add_row table
        [ name; string_of_int n; string_of_int e; string_of_int (n * n) ]
    in
    row "SLIF-AG" stats.Slif.Stats.bv stats.Slif.Stats.channels;
    row "ADD/VT" (Addfmt.Add.node_count add) (Addfmt.Add.edge_count add);
    row "CDFG" (Cdfg.Graph.node_count cdfg) (Cdfg.Graph.edge_count cdfg);
    Slif_util.Table.print table;
    0
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare SLIF size against the ADD and CDFG formats.")
    Term.(const run $ obs_term $ spec_arg $ file_arg)

(* --- figure4 ------------------------------------------------------------------- *)

let figure4_cmd =
  let run obs jobs =
    with_obs obs @@ fun () ->
    if jobs < 1 then failf "--jobs must be at least 1";
    let table =
      Slif_util.Table.create
        ~header:[ ""; "Lines"; "BV"; "C"; "T-slif(s)"; "T-est(s)"; "parts/s" ]
    in
    let measure (spec : Specs.Registry.spec) =
      Slif_obs.Span.with_ "figure4.spec" ~args:[ ("spec", spec.spec_name) ]
      @@ fun () ->
      let build () =
        let design = Vhdl.Parser.parse spec.source in
        let sem = Vhdl.Sem.build design in
        Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem)
      in
      let slif, t_slif = Slif_obs.Clock.time build in
      let s = Ops.apply_proc_asic slif in
      let graph = Slif.Graph.make s in
      let part = Specsyn.Search.seed_partition s in
      let estimate () =
        let est = Specsyn.Search.estimator graph part in
        Array.iter
          (fun (n : Slif.Types.node) ->
            if Slif.Types.is_process n then
              ignore (Slif.Estimate.exectime_us est n.n_id))
          s.Slif.Types.nodes;
        ignore (Slif.Estimate.size est (Slif.Partition.Cproc 0));
        ignore (Slif.Estimate.io_pins est (Slif.Partition.Cproc 0));
        ignore (Slif.Estimate.bus_bitrate_mbps est 0)
      in
      let (), t_est = Slif_obs.Clock.time estimate in
      (* The paper's point is that T-est makes interactive exploration
         feasible (experiment R4): report the partitions-per-second a
         greedy search actually achieves on this spec. *)
      let problem = Specsyn.Search.problem graph in
      let solution, t_part = Slif_obs.Clock.time (fun () -> Specsyn.Greedy.run problem) in
      let parts_per_s =
        if t_part > 0.0 then float_of_int solution.Specsyn.Search.evaluated /. t_part
        else 0.0
      in
      let stats = Slif.Stats.of_slif slif in
      [
        spec.spec_name;
        string_of_int (Specs.Registry.line_count spec);
        string_of_int stats.Slif.Stats.bv;
        string_of_int stats.Slif.Stats.channels;
        Printf.sprintf "%.4f" t_slif;
        Printf.sprintf "%.6f" t_est;
        Printf.sprintf "%.0f" parts_per_s;
      ]
    in
    (* Pool.map keeps submission order, so the table rows land in registry
       order whatever the parallelism. *)
    let rows = Slif_util.Pool.with_pool ~jobs (fun pool -> Slif_util.Pool.map pool measure Specs.Registry.all) in
    List.iter (Slif_util.Table.add_row table) rows;
    Slif_util.Table.print table;
    0
  in
  let jobs =
    let doc =
      "Measure the benchmark specs on $(docv) domains.  Row order (and every \
       column except the timings) is identical for all values."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "figure4" ~doc:"Regenerate the paper's Figure 4 results table.")
    Term.(const run $ obs_term $ jobs)

(* --- store ------------------------------------------------------------------ *)

let store_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Store file.")

let store_write_cmd =
  let run obs spec file profile auto out =
    with_obs obs @@ fun () ->
    let source = read_source (source_of ~file ~spec) in
    let profile_text = resolve_profile_text ~auto ~profile source in
    let slif = Ops.annotated ?profile_text source in
    let provenance =
      {
        Store.pv_source_md5 = Digest.to_hex (Digest.string source);
        pv_profile = profile_text;
        pv_tech = Slif_store.Cache.tech_fingerprint ();
      }
    in
    Store.save_slif ~path:out ~provenance slif;
    Printf.printf "wrote %s (%s, format v%d)\n" out slif.Slif.Types.design_name
      Store.format_version;
    0
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output store file.")
  in
  Cmd.v
    (Cmd.info "write" ~doc:"Annotate a specification and write the store container.")
    Term.(const run $ obs_term $ spec_arg $ file_arg $ profile_arg $ auto_profile_arg $ out)

let store_info_cmd =
  let run obs path =
    with_obs obs @@ fun () ->
    let text =
      match Store.read_file path with
      | Ok text -> text
      | Error err -> failf "%s" (Store.error_message err)
    in
    match Store.inspect text with
    | Error err -> failf "%s" (Store.error_message err)
    | Ok info ->
        Printf.printf "format:  v%d\n" info.Store.si_version;
        Printf.printf "kind:    %s\n"
          (match info.Store.si_kind with Store.Kslif -> "annotated slif" | Store.Kdecision -> "partition decision");
        Printf.printf "design:  %s\n" info.Store.si_design;
        (match info.Store.si_provenance with
        | Some p ->
            Printf.printf "source:  md5 %s\n"
              (if p.Store.pv_source_md5 = "" then "(unknown)" else p.Store.pv_source_md5);
            Printf.printf "profile: %s\n"
              (match p.Store.pv_profile with Some _ -> "recorded" | None -> "static defaults");
            Printf.printf "tech:    %s\n" p.Store.pv_tech
        | None -> ());
        Printf.printf "section  offset      size        crc\n";
        List.iter
          (fun (s : Store.section_info) ->
            Printf.printf "%s     %-10d  %-10d  %08lx\n" s.Store.sec_tag
              s.Store.sec_offset s.Store.sec_size s.Store.sec_crc)
          info.Store.si_sections;
        0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Inspect a store file: header, sections, provenance.")
    Term.(const run $ obs_term $ store_file_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store" ~doc:"Write and inspect persistent SLIF store files.")
    [ store_write_cmd; store_info_cmd ]

(* --- synth ------------------------------------------------------------------ *)

let synth_cmd =
  let run obs seed nodes family depth fanout var_fraction sharing jobs out version =
    with_obs obs @@ fun () ->
    let family =
      match Slif_synth.Synth.family_of_string family with
      | Ok f -> f
      | Error msg -> failf "%s" msg
    in
    if jobs < 1 then failf "--jobs must be at least 1";
    (match version with
    | 1 | 2 -> ()
    | v -> failf "--format must be 1 or 2 (got %d)" v);
    let p =
      {
        (Slif_synth.Synth.default_params ~seed ~nodes family) with
        depth;
        fanout;
        var_fraction;
        sharing;
      }
    in
    let slif, t_gen =
      Slif_obs.Clock.time (fun () ->
          if jobs = 1 then Slif_synth.Synth.generate p
          else
            Slif_util.Pool.with_pool ~jobs (fun pool ->
                Slif_synth.Synth.generate ~pool p))
    in
    Printf.printf "%s\n" (Slif_synth.Synth.describe slif);
    (match out with
    | Some path ->
        let (), t_write =
          Slif_obs.Clock.time (fun () -> Store.save_slif ~path ~version slif)
        in
        let bytes = (Unix.stat path).Unix.st_size in
        Printf.printf "wrote %s (format v%d, %d bytes, %.1f bytes/node)\n" path version
          bytes
          (float_of_int bytes /. float_of_int nodes);
        Printf.printf "generate %.3fs  write %.3fs\n" t_gen t_write
    | None -> Printf.printf "generate %.3fs\n" t_gen);
    0
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Root seed (the graph is a pure function of it).")
  in
  let nodes =
    Arg.(value & opt int 100_000
         & info [ "nodes" ] ~docv:"N" ~doc:"Total node count (behaviors + variables).")
  in
  let family =
    let all =
      String.concat ", " (List.map Slif_synth.Synth.family_to_string Slif_synth.Synth.all_families)
    in
    Arg.(value & opt string "mixed"
         & info [ "family" ] ~docv:"NAME" ~doc:(Printf.sprintf "Topology family: %s." all))
  in
  let depth =
    Arg.(value & opt int 64
         & info [ "depth" ] ~docv:"N" ~doc:"Max call-chain length (clamped to 2048).")
  in
  let fanout =
    Arg.(value & opt int 16
         & info [ "fanout" ] ~docv:"N" ~doc:"Children per node in fanout shapes.")
  in
  let var_fraction =
    Arg.(value & opt float 0.25
         & info [ "var-fraction" ] ~docv:"F"
             ~doc:"Fraction of nodes that are variables (sharing families).")
  in
  let sharing =
    Arg.(value & opt int 3
         & info [ "sharing" ] ~docv:"N"
             ~doc:"Variable accesses generated per sharing behavior.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Generate on $(docv) domains; output is byte-identical for every value.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the graph as a store container.")
  in
  let version =
    Arg.(value & opt int Store.format_version_v2
         & info [ "format" ] ~docv:"V"
             ~doc:"Store format version to write: 1 (eager) or 2 (lazily decodable).")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Generate a deterministic synthetic access graph (and optionally write it \
             as a store container).")
    Term.(
      const run $ obs_term $ seed $ nodes $ family $ depth $ fanout $ var_fraction
      $ sharing $ jobs $ out $ version)

(* --- serve ------------------------------------------------------------------ *)

let serve_cmd =
  let run obs socket port cache_dir lru lru_shards workers jobs max_requests slow_ms
      max_batch_items max_outq_mb max_connections max_graph_mb retain_traces trace_dir
      event_log event_level sample =
    with_obs obs @@ fun () ->
    let addr =
      match (socket, port) with
      | Some path, None -> Slif_server.Server.Unix_sock path
      | None, Some p -> Slif_server.Server.Tcp p
      | None, None -> failf "specify --socket PATH or --port N"
      | Some _, Some _ -> failf "give only one of --socket and --port"
    in
    if lru < 1 then failf "--lru must be at least 1";
    if lru_shards < 1 then failf "--lru-shards must be at least 1";
    if workers < 1 then failf "--workers must be at least 1";
    if jobs < 1 then failf "--jobs must be at least 1";
    if sample < 1 then failf "--sample must be at least 1";
    if max_batch_items < 1 then failf "--max-batch-items must be at least 1";
    if max_outq_mb < 1 then failf "--max-outq-mb must be at least 1";
    (match max_connections with
    | Some n when n < 1 -> failf "--max-connections must be at least 1"
    | Some _ | None -> ());
    (match max_graph_mb with
    | Some n when n < 1 -> failf "--max-graph-mb must be at least 1"
    | Some _ | None -> ());
    (match slow_ms with
    | Some s when s < 0.0 -> failf "--slow-ms must not be negative"
    | Some _ | None -> ());
    if retain_traces < 0 then failf "--retain-traces must not be negative";
    let cfg =
      {
        Slif_server.Server.addr;
        cache_dir;
        lru_capacity = lru;
        lru_shards;
        workers;
        jobs;
        max_requests;
        slow_ms;
        max_line_bytes = Slif_server.Server.default_max_line_bytes;
        max_batch_items;
        max_outq_bytes = max_outq_mb * 1024 * 1024;
        max_connections;
        max_graph_mb;
        retain_traces;
        trace_dir;
      }
    in
    (match event_log with
    | Some path ->
        Slif_obs.Event.open_log path;
        Slif_obs.Event.set_level event_level;
        Slif_obs.Event.set_sample sample
    | None -> ());
    let on_ready sockaddr =
      (match sockaddr with
      | Unix.ADDR_UNIX path -> Printf.printf "listening on %s\n" path
      | Unix.ADDR_INET (_, port) -> Printf.printf "listening on 127.0.0.1:%d\n" port);
      flush stdout
    in
    Fun.protect ~finally:Slif_obs.Event.close_log @@ fun () ->
    (match Slif_server.Server.run ~on_ready cfg with
    | () -> ()
    | exception Unix.Unix_error (err, _, arg) ->
        failf "cannot serve on %s: %s"
          (if arg = "" then "socket" else arg)
          (Unix.error_message err));
    0
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"N"
             ~doc:"Listen on loopback TCP port $(docv) (0 picks a free port).")
  in
  let lru =
    Arg.(value & opt int 8
         & info [ "lru" ] ~docv:"N" ~doc:"Keep at most $(docv) annotated graphs resident.")
  in
  let lru_shards =
    Arg.(value & opt int 8
         & info [ "lru-shards" ] ~docv:"N"
             ~doc:"Split the resident set over $(docv) independently locked shards.")
  in
  let workers =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N"
             ~doc:"Execute requests on $(docv) worker domains (the acceptor stays on \
                   its own).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Default domain count for explore requests that do not set their own.")
  in
  let max_batch_items =
    Arg.(value & opt int Slif_server.Protocol.default_max_batch_items
         & info [ "max-batch-items" ] ~docv:"N"
             ~doc:"Reject batch requests carrying more than $(docv) items.")
  in
  let max_outq_mb =
    Arg.(value & opt int (Slif_server.Server.default_max_outq_bytes / (1024 * 1024))
         & info [ "max-outq-mb" ] ~docv:"MB"
             ~doc:"Disconnect a client once its unread responses exceed $(docv) \
                   megabytes (slow-reader backpressure).")
  in
  let max_connections =
    Arg.(value & opt (some int) None
         & info [ "max-connections" ] ~docv:"N"
             ~doc:"Refuse connections beyond $(docv) concurrent clients.")
  in
  let max_graph_mb =
    Arg.(value & opt (some int) None
         & info [ "max-graph-mb" ] ~docv:"MB"
             ~doc:"Reject store-file loads whose decoded graph would exceed $(docv) \
                   megabytes (typed error kind \"graph_too_large\"); metadata-only \
                   loads of v2 containers are always admitted.")
  in
  let max_requests =
    Arg.(value & opt (some int) None
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Exit after serving $(docv) requests (soak and smoke harnesses).")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Log requests that take at least $(docv) milliseconds to stderr (and \
                   the event log, at warn level), and retain their full cross-domain \
                   span tree from the flight recorder.")
  in
  let retain_traces =
    Arg.(value & opt int 32
         & info [ "retain-traces" ] ~docv:"N"
             ~doc:"Keep the span trees of the last $(docv) slow or failing requests \
                   (tail-based retention; 0 disables it).")
  in
  let trace_dir =
    Arg.(value & opt (some string) None
         & info [ "trace-dir" ] ~docv:"DIR"
             ~doc:"Mirror each retained trace to $(docv)/<trace-id>.json, and write \
                   SIGQUIT/crash flight dumps there instead of the temp dir.")
  in
  let event_log =
    Arg.(value & opt (some string) None
         & info [ "event-log" ] ~docv:"FILE"
             ~doc:"Append structured request events to $(docv) as JSON lines, each \
                   carrying the request's trace id.")
  in
  let event_level =
    let levels =
      [
        ("debug", Slif_obs.Event.Debug);
        ("info", Slif_obs.Event.Info);
        ("warn", Slif_obs.Event.Warn);
        ("error", Slif_obs.Event.Error);
      ]
    in
    Arg.(value & opt (enum levels) Slif_obs.Event.Info
         & info [ "event-level" ] ~docv:"LEVEL"
             ~doc:"Minimum level written to --event-log: debug, info, warn or error.")
  in
  let sample =
    Arg.(value & opt int 1
         & info [ "sample" ] ~docv:"N"
             ~doc:"Keep 1 in $(docv) debug/info event-log lines (warnings and errors \
                   always land).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve load/estimate/partition/explore/stats/health/metrics queries over \
             a socket (newline-delimited JSON).")
    Term.(
      const run $ obs_term $ socket $ port $ cache_dir_arg $ lru $ lru_shards $ workers
      $ jobs $ max_requests $ slow_ms $ max_batch_items $ max_outq_mb $ max_connections
      $ max_graph_mb $ retain_traces $ trace_dir $ event_log $ event_level $ sample)

(* --- stats (client) --------------------------------------------------------- *)

let stats_cmd =
  let run obs socket port watch interval count timeout_ms =
    with_obs obs @@ fun () ->
    if interval <= 0.0 then failf "--interval must be positive";
    (match count with
    | Some n when n < 1 -> failf "--count must be at least 1"
    | Some _ | None -> ());
    let module J = Slif_obs.Json in
    let module Client = Slif_server.Client in
    let connect () =
      match (socket, port) with
      | Some path, None -> Client.connect_unix ?timeout_ms path
      | None, Some p -> Client.connect_tcp ?timeout_ms p
      | None, None -> failf "specify --socket PATH or --port N"
      | Some _, Some _ -> failf "give only one of --socket and --port"
    in
    let mem name j = Option.value (J.member name j) ~default:J.Null in
    let fnum j name =
      match mem name j with J.Int n -> float_of_int n | J.Float f -> f | _ -> nan
    in
    let inum j name =
      match mem name j with J.Int n -> n | J.Float f -> int_of_float f | _ -> 0
    in
    let fetch c op =
      match Client.request c (J.Obj [ ("op", J.String op) ]) with
      | Ok json -> json
      | Error msg -> failf "%s request failed: %s" op msg
    in
    let render () =
      let c = connect () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let health = fetch c "health" in
      let stats = fetch c "stats" in
      let lru = mem "lru" health in
      Printf.printf "uptime %.1fs  requests %d  errors %d  inflight %d  lru %d/%d\n"
        (fnum health "uptime_s") (inum health "requests") (inum health "errors")
        (inum health "inflight") (inum lru "size") (inum lru "capacity");
      (match mem "gc" stats with
      | J.Obj _ as gc ->
          Printf.printf
            "gc     minor %d  major %d  promoted %.3g words  heap %.3g words\n"
            (inum gc "minor_collections") (inum gc "major_collections")
            (fnum gc "promoted_words")
            (float_of_int (inum gc "heap_words"))
      | _ -> ());
      (match mem "pool" stats with
      | J.Obj _ as p ->
          Printf.printf "pool   live %d (created %d)  tasks %d submitted / %d completed\n"
            (inum p "pools_live") (inum p "pools_created") (inum p "tasks_submitted")
            (inum p "tasks_completed")
      | _ -> ());
      (match mem "flight" stats with
      | J.Obj _ as f ->
          let rings =
            match mem "rings" f with J.List rs -> List.length rs | _ -> 0
          in
          Printf.printf
            "flight %d records (%d dropped) over %d rings  retained %d traces (%d \
             live)  dumps %d bytes\n"
            (inum f "records") (inum f "dropped") rings (inum f "retained")
            (inum f "retained_live") (inum f "dump_bytes")
      | _ -> ());
      (match mem "last_error" health with
      | J.String msg -> Printf.printf "last error: %s\n" msg
      | _ -> ());
      (match mem "latency_us" stats with
      | J.Obj ((_ :: _) as ops) ->
          let table =
            Slif_util.Table.create
              ~header:[ "op"; "recent"; "p50 us"; "p90 us"; "p99 us"; "max us" ]
          in
          List.iter
            (fun (op, q) ->
              Slif_util.Table.add_row table
                [
                  op;
                  string_of_int (inum q "count");
                  Printf.sprintf "%.0f" (fnum q "p50");
                  Printf.sprintf "%.0f" (fnum q "p90");
                  Printf.sprintf "%.0f" (fnum q "p99");
                  Printf.sprintf "%.0f" (fnum q "max");
                ])
            ops;
          Slif_util.Table.print table
      | _ -> print_endline "no requests observed yet");
      flush stdout
    in
    let render () =
      try render () with
      | Unix.Unix_error (err, _, _) ->
          failf "cannot reach the daemon: %s" (Unix.error_message err)
      | Client.Timeout -> failf "the daemon did not answer within the timeout"
      | End_of_file -> failf "the daemon closed the connection"
    in
    if not watch then render ()
    else begin
      (* top-style: redraw in place on a terminal, scroll otherwise. *)
      let iterations = match count with Some n -> n | None -> max_int in
      let i = ref 0 in
      while !i < iterations do
        if !i > 0 then Unix.sleepf interval;
        if Unix.isatty Unix.stdout then print_string "\027[H\027[2J";
        render ();
        incr i
      done
    end;
    0
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix-domain socket path.")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"N" ~doc:"Daemon loopback TCP port.")
  in
  let watch =
    Arg.(value & flag
         & info [ "watch"; "w" ]
             ~doc:"Refresh continuously (top-style) instead of printing once.")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECS" ~doc:"Seconds between --watch refreshes.")
  in
  let count =
    Arg.(value & opt (some int) None
         & info [ "count" ] ~docv:"N"
             ~doc:"Stop --watch after $(docv) refreshes (default: until interrupted).")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Fail if the daemon does not answer within $(docv) milliseconds.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Show a running daemon's health and recent per-op latency quantiles.")
    Term.(
      const run $ obs_term $ socket $ port $ watch $ interval $ count $ timeout_ms)

(* --- trace (client) --------------------------------------------------------- *)

let trace_cmd =
  let run obs socket port id follow interval export timeout_ms =
    with_obs obs @@ fun () ->
    if interval <= 0.0 then failf "--interval must be positive";
    let module J = Slif_obs.Json in
    let module Client = Slif_server.Client in
    let connect () =
      match (socket, port) with
      | Some path, None -> Client.connect_unix ?timeout_ms path
      | None, Some p -> Client.connect_tcp ?timeout_ms p
      | None, None -> failf "specify --socket PATH or --port N"
      | Some _, Some _ -> failf "give only one of --socket and --port"
    in
    let mem name j = Option.value (J.member name j) ~default:J.Null in
    let str j name = match mem name j with J.String s -> s | _ -> "" in
    let inum j name =
      match mem name j with J.Int n -> n | J.Float f -> int_of_float f | _ -> 0
    in
    let fnum j name =
      match mem name j with J.Int n -> float_of_int n | J.Float f -> f | _ -> nan
    in
    let fetch c fields =
      match Client.request c (J.Obj fields) with
      | Ok json -> json
      | Error msg -> failf "traces request failed: %s" msg
    in
    (* One retained tree, ASCII-indented by parent-span causality.
       Events carry id 0 and are leaves by construction; a span whose
       parent fell out of the ring window renders as a root. *)
    let render_tree trace =
      let spans = match mem "spans" trace with J.List l -> l | _ -> [] in
      Printf.printf "trace %s  %s  op %s  %.0f us  %d spans\n" (str trace "id")
        (str trace "reason") (str trace "op") (fnum trace "dur_us") (List.length spans);
      let known =
        List.sort_uniq compare
          (List.filter_map
             (fun s -> if str s "kind" = "span" then Some (inum s "id") else None)
             spans)
      in
      let children p =
        List.filter (fun s -> inum s "parent" = p && inum s "id" <> p) spans
      in
      let roots = List.filter (fun s -> not (List.mem (inum s "parent") known)) spans in
      let rec print_rec depth s =
        let indent = String.make (2 * depth) ' ' in
        let label = indent ^ str s "name" in
        if str s "kind" = "event" then
          Printf.printf "  %-44s %12s  dom %d\n" label "*" (inum s "dom")
        else begin
          Printf.printf "  %-44s %9.1f us  dom %d\n" label
            (float_of_int (inum s "dur_ns") /. 1e3)
            (inum s "dom");
          List.iter (print_rec (depth + 1)) (children (inum s "id"))
        end
      in
      List.iter (print_rec 0) roots
    in
    let seen = Hashtbl.create 16 in
    let render () =
      let c = connect () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (match export with
      | Some path ->
          let dump = fetch c [ ("op", J.String "dump") ] in
          let out = match mem "output" dump with J.String s -> s | _ -> "{}" in
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              output_string oc out);
          Printf.printf "wrote %d bytes of Chrome trace_event to %s\n"
            (String.length out) path
      | None -> ());
      match id with
      | Some tid ->
          let resp = fetch c [ ("op", J.String "traces"); ("id", J.String tid) ] in
          render_tree (mem "trace" resp)
      | None ->
          let resp = fetch c [ ("op", J.String "traces") ] in
          let traces = match mem "traces" resp with J.List l -> l | _ -> [] in
          let fresh =
            List.filter (fun t -> not (Hashtbl.mem seen (str t "id"))) traces
          in
          List.iter (fun t -> Hashtbl.replace seen (str t "id") ()) fresh;
          let shown = if follow then fresh else traces in
          if shown = [] && not follow then
            Printf.printf "no traces retained (%d retained in total since start)\n"
              (inum resp "retained_total")
          else
            List.iter
              (fun t ->
                Printf.printf "%-12s %-6s %-10s %9.0f us  %d spans\n" (str t "id")
                  (str t "reason") (str t "op") (fnum t "dur_us") (inum t "spans"))
              shown;
          flush stdout
    in
    let render () =
      try render () with
      | Unix.Unix_error (err, _, _) ->
          failf "cannot reach the daemon: %s" (Unix.error_message err)
      | Client.Timeout -> failf "the daemon did not answer within the timeout"
      | End_of_file -> failf "the daemon closed the connection"
    in
    if not follow then render ()
    else
      while true do
        render ();
        Unix.sleepf interval
      done;
    0
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix-domain socket path.")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"N" ~doc:"Daemon loopback TCP port.")
  in
  let id =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~docv:"TRACE"
             ~doc:"Render the retained span tree of trace $(docv) (e.g. c3-r17) \
                   instead of the summary list.")
  in
  let follow =
    Arg.(value & flag
         & info [ "follow"; "f" ]
             ~doc:"Poll the daemon and print each newly retained trace once \
                   (tail -f for slow and failing requests).")
  in
  let interval =
    Arg.(value & opt float 1.0
         & info [ "interval" ] ~docv:"SECS" ~doc:"Seconds between --follow polls.")
  in
  let export =
    Arg.(value & opt (some string) None
         & info [ "export" ] ~docv:"FILE"
             ~doc:"Fetch the daemon's whole flight window and write it to $(docv) as \
                   Chrome trace_event JSON (load in chrome://tracing or Perfetto).")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Fail if the daemon does not answer within $(docv) milliseconds.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"List or render the traces a daemon retained for slow and failing \
             requests, or export its flight-recorder window as a Chrome trace.")
    Term.(
      const run $ obs_term $ socket $ port $ id $ follow $ interval $ export
      $ timeout_ms)

(* --- profile ---------------------------------------------------------------- *)

(* "-j 4", "-j 1..8", "-j 1,2,4" or mixtures ("1..2,8"): the domain
   counts the scaling sweep measures. *)
let parse_jobs_range s =
  let parse_int what v =
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 -> n
    | Some _ -> failf "-j: domain counts must be at least 1 (got %s)" v
    | None -> failf "-j: %s %S is not a number" what v
  in
  let range_split item =
    let n = String.length item in
    let rec find i =
      if i + 1 >= n then None
      else if item.[i] = '.' && item.[i + 1] = '.' then Some i
      else find (i + 1)
    in
    find 0
  in
  let parse_item item =
    match range_split item with
    | Some i ->
        let lo = parse_int "range start" (String.sub item 0 i) in
        let hi =
          parse_int "range end" (String.sub item (i + 2) (String.length item - i - 2))
        in
        if hi < lo then failf "-j: empty range %s" item;
        List.init (hi - lo + 1) (fun k -> lo + k)
    | None -> [ parse_int "domain count" item ]
  in
  let items = String.split_on_char ',' (String.trim s) in
  let jobs = List.concat_map parse_item (List.filter (fun i -> String.trim i <> "") items) in
  if jobs = [] then failf "-j: no domain counts in %S" s;
  List.sort_uniq compare jobs

(* Each run's Chrome trace gets its domain count in the file name:
   profile.json -> profile-j4.json. *)
let trace_path_for base j =
  let ext = Filename.extension base in
  if ext = "" then Printf.sprintf "%s-j%d" base j
  else Printf.sprintf "%s-j%d%s" (Filename.remove_extension base) j ext

let profile_cmd =
  let run spec file profile auto cache_dir jobs_spec chunk json_path trace min_coverage
      deadlines =
    guarded @@ fun () ->
    let jobs = parse_jobs_range jobs_spec in
    if chunk < 0 then failf "--chunk must be at least 1 (or 0 for the heuristic)";
    let chunk = if chunk >= 1 then Some chunk else None in
    (match min_coverage with
    | Some f when f < 0.0 || f > 1.0 -> failf "--min-coverage must be in [0, 1]"
    | Some _ | None -> ());
    let src = source_of ~file ~spec in
    let source = read_source src in
    let name =
      match src with `Bundled s -> s | `File path -> Filename.basename path
    in
    let slif = annotated ?cache_dir ~auto ~profile source in
    let constraints = Ops.constraints_of_deadlines (parse_deadlines deadlines) in
    let trace = Option.map (fun base j -> trace_path_for base j) trace in
    let result = Specsyn.Profiler.run ?chunk ?trace ~constraints ~name ~jobs slif in
    print_string (Specsyn.Profiler.to_text result);
    Option.iter
      (fun path -> Slif_obs.Json.write_file path (Specsyn.Profiler.to_json result))
      json_path;
    if not result.Specsyn.Profiler.identical then begin
      Printf.eprintf
        "slif: profiled runs disagree across domain counts — determinism violated\n";
      1
    end
    else
      match min_coverage with
      | Some floor
        when List.exists
               (fun (r : Specsyn.Profiler.run) ->
                 r.Specsyn.Profiler.p_report.Slif_obs.Attribution.coverage < floor)
               result.Specsyn.Profiler.runs ->
          Printf.eprintf
            "slif: attribution coverage fell below %.0f%% for at least one run\n"
            (100.0 *. floor);
          1
      | _ -> 0
  in
  let jobs =
    let doc =
      "Domain counts to sweep: a count (4), an inclusive range (1..8) or a \
       comma-separated mixture (1,2,4..8).  Each count runs the full \
       exploration once with the parallelism profiler armed."
    in
    Arg.(value & opt string "1..2" & info [ "jobs"; "j" ] ~docv:"RANGE" ~doc)
  in
  let chunk =
    let doc =
      "Restart slice size for multi-restart algorithms, as in \
       $(b,slif partition --chunk); 0 picks the heuristic."
    in
    Arg.(value & opt int 0 & info [ "chunk" ] ~docv:"N" ~doc)
  in
  let json_path =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the machine-readable scaling report (schema slif-profile/1) \
                   to $(docv).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write one Chrome trace per domain count, with spans and pool \
                   counter tracks; -jN is inserted before the extension.")
  in
  let min_coverage =
    Arg.(value & opt (some float) None
         & info [ "min-coverage" ] ~docv:"FRACTION"
             ~doc:"Exit nonzero when the attribution names less than $(docv) of the \
                   measured wall time in any run (CI smoke uses 0.9).")
  in
  let deadlines =
    Arg.(value & opt_all string []
         & info [ "deadline" ] ~docv:"BEHAVIOR=US"
             ~doc:"Execution-time constraint, as in $(b,slif partition).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile the parallel exploration across domain counts: speedup curve, \
             per-domain wall-time attribution (task/queue/lock/GC/copy/idle), lock \
             contention and GC pressure."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the same design-space exploration once per requested domain \
              count with the contention, GC and scheduler profilers armed, then \
              reports where each domain's wall time went.  Profiling never \
              changes what exploration computes: the command fails if results \
              differ across domain counts.";
         ])
    Term.(
      const run $ spec_arg $ file_arg $ profile_arg $ auto_profile_arg $ cache_dir_arg
      $ jobs $ chunk $ json_path $ trace $ min_coverage $ deadlines)

let main_cmd =
  let doc = "SLIF: a specification-level intermediate format for system design" in
  Cmd.group
    (Cmd.info "slif" ~version:"1.0.0" ~doc)
    [
      dump_spec_cmd; build_cmd; estimate_cmd; partition_cmd; compare_cmd; figure4_cmd;
      store_cmd; synth_cmd; serve_cmd; stats_cmd; trace_cmd; profile_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
