(* The transactional move engine, property-tested against the Cost.evaluate
   oracle on every bundled specification. *)

let checkf = Alcotest.(check (float 1e-9))

let annotated_of_spec (spec : Specs.Registry.spec) =
  let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.Specs.Registry.source) in
  Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem)

(* Deadlines on the first two processes — one tight enough to violate, one
   loose — plus a name that resolves to nothing (the oracle skips it, so
   the engine must too). *)
let constraints_for (s : Slif.Types.t) =
  let processes =
    Array.to_list s.Slif.Types.nodes
    |> List.filter Slif.Types.is_process
    |> List.map (fun (n : Slif.Types.node) -> n.n_name)
  in
  let deadlines =
    match processes with
    | [] -> []
    | [ p ] -> [ (p, 100.0) ]
    | p :: q :: _ -> [ (p, 100.0); (q, 1e7) ]
  in
  { Specsyn.Cost.deadlines_us = ("no_such_process", 1.0) :: deadlines }

let problem_for spec alloc =
  let s = Specsyn.Alloc.apply (annotated_of_spec spec) alloc in
  let graph = Slif.Graph.make s in
  Specsyn.Search.problem ~constraints:(constraints_for s) graph

(* The oracle: a full sweep on a fresh estimator over the live partition. *)
let oracle (problem : Specsyn.Search.problem) part =
  Specsyn.Cost.evaluate ~weights:problem.Specsyn.Search.weights
    ~constraints:problem.Specsyn.Search.constraints
    (Specsyn.Search.estimator problem.Specsyn.Search.graph part)

let check_against_oracle label problem eng =
  let b = Specsyn.Engine.breakdown eng in
  let o = oracle problem (Specsyn.Engine.partition eng) in
  checkf (label ^ ": size") o.Specsyn.Cost.size_violation b.Specsyn.Cost.size_violation;
  checkf (label ^ ": io") o.Specsyn.Cost.io_violation b.Specsyn.Cost.io_violation;
  checkf (label ^ ": time") o.Specsyn.Cost.time_violation b.Specsyn.Cost.time_violation;
  checkf (label ^ ": bitrate") o.Specsyn.Cost.bitrate_violation
    b.Specsyn.Cost.bitrate_violation;
  checkf (label ^ ": total") o.Specsyn.Cost.total b.Specsyn.Cost.total

let engine_for spec alloc =
  let problem = problem_for spec alloc in
  let part =
    Specsyn.Search.seed_partition (Slif.Graph.slif problem.Specsyn.Search.graph)
  in
  (problem, Specsyn.Engine.of_problem problem part)

(* Allocations with capacity pressure (size and pin caps on the paper's
   processor+ASIC architecture) and with several buses and a memory, so
   every cost term and move kind gets exercised. *)
let allocs () =
  [
    Specsyn.Alloc.proc_asic ~cpu_cap:2000.0 ~asic_cap:10_000.0 ~asic_pins:40 ();
    Specsyn.Alloc.proc_asic_mem ();
  ]

let test_create_matches_oracle () =
  List.iter
    (fun spec ->
      List.iter
        (fun alloc ->
          let problem, eng = engine_for spec alloc in
          check_against_oracle
            (spec.Specs.Registry.spec_name ^ "/" ^ alloc.Specsyn.Alloc.alloc_name)
            problem eng)
        (allocs ()))
    Specs.Registry.all

(* The tentpole property: over random move sequences on every spec, the
   incrementally maintained total equals the oracle after every propose,
   commit and rollback, and rollback restores the exact prior partition. *)
let test_random_moves_match_oracle () =
  List.iter
    (fun spec ->
      List.iter
        (fun alloc ->
          let label = spec.Specs.Registry.spec_name ^ "/" ^ alloc.Specsyn.Alloc.alloc_name in
          let problem, eng = engine_for spec alloc in
          let rng = Slif_util.Prng.create 42 in
          for step = 1 to 40 do
            match Specsyn.Engine.random_move eng rng with
            | None -> ()
            | Some move ->
                let part_before = Slif.Partition.copy (Specsyn.Engine.partition eng) in
                let version_before =
                  Slif.Partition.version (Specsyn.Engine.partition eng)
                in
                let cost_before = Specsyn.Engine.cost eng in
                let proposed = Specsyn.Engine.propose eng move in
                let tag = Printf.sprintf "%s step %d" label step in
                checkf (tag ^ " propose") proposed (Specsyn.Engine.cost eng);
                check_against_oracle (tag ^ " pending") problem eng;
                if Slif_util.Prng.bool rng then begin
                  Specsyn.Engine.commit eng;
                  check_against_oracle (tag ^ " committed") problem eng
                end
                else begin
                  Specsyn.Engine.rollback eng;
                  let part = Specsyn.Engine.partition eng in
                  Alcotest.(check int)
                    (tag ^ " version restored") version_before
                    (Slif.Partition.version part);
                  Array.iteri
                    (fun i _ ->
                      Alcotest.(check bool)
                        (tag ^ " node mapping restored") true
                        (Slif.Partition.comp_of part i
                        = Slif.Partition.comp_of part_before i))
                    (Slif.Partition.slif part).Slif.Types.nodes;
                  Array.iteri
                    (fun i _ ->
                      Alcotest.(check bool)
                        (tag ^ " chan mapping restored") true
                        (Slif.Partition.bus_of part i = Slif.Partition.bus_of part_before i))
                    (Slif.Partition.slif part).Slif.Types.chans;
                  (* Bit-exact, not just within tolerance: the journal wrote
                     every touched cell back. *)
                  Alcotest.(check bool)
                    (tag ^ " cost restored exactly") true
                    (Specsyn.Engine.cost eng = cost_before)
                end
          done)
        (allocs ()))
    Specs.Registry.all

let test_group_moves_atomic () =
  let problem, eng = engine_for (Specs.Registry.find_exn "fuzzy") (Specsyn.Alloc.proc_asic_mem ()) in
  let rng = Slif_util.Prng.create 9 in
  let rec draw n acc =
    if n = 0 then acc
    else
      match Specsyn.Engine.random_move eng rng with
      | Some m -> draw (n - 1) (m :: acc)
      | None -> draw n acc
  in
  let moves = draw 6 [] in
  let cost_before = Specsyn.Engine.cost eng in
  ignore (Specsyn.Engine.propose eng (Specsyn.Engine.Move_group moves));
  check_against_oracle "group pending" problem eng;
  Specsyn.Engine.rollback eng;
  Alcotest.(check bool) "group rollback exact" true (Specsyn.Engine.cost eng = cost_before);
  ignore (Specsyn.Engine.propose eng (Specsyn.Engine.Move_group moves));
  Specsyn.Engine.commit eng;
  check_against_oracle "group committed" problem eng

let test_infeasible_move_leaves_state () =
  let _, eng = engine_for (Specs.Registry.find_exn "fuzzy") (Specsyn.Alloc.proc_asic_mem ()) in
  let s = Slif.Graph.slif (Specsyn.Engine.graph eng) in
  let behavior =
    let found = ref (-1) in
    Array.iteri
      (fun i (n : Slif.Types.node) ->
        if !found < 0 then
          match n.n_kind with Slif.Types.Behavior _ -> found := i | _ -> ())
      s.Slif.Types.nodes;
    !found
  in
  let cost_before = Specsyn.Engine.cost eng in
  let attempt move =
    (match Specsyn.Engine.propose eng move with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "infeasible move accepted");
    Alcotest.(check bool) "no pending transaction" false (Specsyn.Engine.pending eng);
    Alcotest.(check bool) "state unchanged" true (Specsyn.Engine.cost eng = cost_before)
  in
  attempt (Specsyn.Engine.Move_node { node = behavior; to_ = Slif.Partition.Cmem 0 });
  attempt (Specsyn.Engine.Move_node { node = -1; to_ = Slif.Partition.Cproc 0 });
  attempt (Specsyn.Engine.Move_chan { chan = 0; to_bus = 99 });
  (* A group failing on its second submove must undo its first. *)
  attempt
    (Specsyn.Engine.Move_group
       [
         Specsyn.Engine.Move_node { node = behavior; to_ = Slif.Partition.Cproc 1 };
         Specsyn.Engine.Move_chan { chan = 0; to_bus = 99 };
       ])

let test_transaction_discipline () =
  let _, eng = engine_for (Specs.Registry.find_exn "fuzzy") (Specsyn.Alloc.proc_asic ()) in
  (match Specsyn.Engine.commit eng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "commit without transaction accepted");
  (match Specsyn.Engine.rollback eng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rollback without transaction accepted");
  ignore
    (Specsyn.Engine.propose eng
       (Specsyn.Engine.Move_node { node = 0; to_ = Slif.Partition.Cproc 1 }));
  (match
     Specsyn.Engine.propose eng
       (Specsyn.Engine.Move_node { node = 0; to_ = Slif.Partition.Cproc 0 })
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nested propose accepted");
  Specsyn.Engine.rollback eng

let test_candidates_match_search () =
  let _, eng = engine_for (Specs.Registry.find_exn "fuzzy") (Specsyn.Alloc.proc_asic_mem ()) in
  let s = Slif.Graph.slif (Specsyn.Engine.graph eng) in
  Array.iteri
    (fun i (node : Slif.Types.node) ->
      Alcotest.(check bool)
        "candidate array matches comps_for_node" true
        (Array.to_list (Specsyn.Engine.candidates eng i)
        = Specsyn.Search.comps_for_node s node))
    s.Slif.Types.nodes

let test_moves_to_reaches_target () =
  let problem, eng = engine_for (Specs.Registry.find_exn "fuzzy") (Specsyn.Alloc.proc_asic_mem ()) in
  (* Wander away from the seed... *)
  let rng = Slif_util.Prng.create 123 in
  let target = Slif.Partition.copy (Specsyn.Engine.partition eng) in
  for _ = 1 to 10 do
    match Specsyn.Engine.random_move eng rng with
    | None -> ()
    | Some move ->
        ignore (Specsyn.Engine.propose eng move);
        Specsyn.Engine.commit eng
  done;
  (* ...then return to the snapshot in one atomic group. *)
  (match Specsyn.Engine.moves_to eng target with
  | [] -> ()
  | moves ->
      ignore (Specsyn.Engine.propose eng (Specsyn.Engine.Move_group moves));
      Specsyn.Engine.commit eng);
  let part = Specsyn.Engine.partition eng in
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        "node back at target" true
        (Slif.Partition.comp_of part i = Slif.Partition.comp_of target i))
    (Slif.Partition.slif part).Slif.Types.nodes;
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        "chan back at target" true
        (Slif.Partition.bus_of part i = Slif.Partition.bus_of target i))
    (Slif.Partition.slif part).Slif.Types.chans;
  check_against_oracle "after moves_to" problem eng

let test_engine_algorithms_agree_with_oracle () =
  (* End-to-end: every algorithm's reported cost is the oracle's cost of
     the partition it returns. *)
  let spec = Specs.Registry.find_exn "fuzzy" in
  let problem = problem_for spec (Specsyn.Alloc.proc_asic_mem ()) in
  let check_sol name (sol : Specsyn.Search.solution) =
    checkf name (oracle problem sol.Specsyn.Search.part).Specsyn.Cost.total
      sol.Specsyn.Search.cost
  in
  check_sol "greedy" (Specsyn.Greedy.run problem);
  check_sol "group migration" (Specsyn.Group_migration.run problem);
  check_sol "random" (Specsyn.Random_part.run ~seed:3 ~restarts:5 problem);
  check_sol "annealing"
    (Specsyn.Annealing.run
       ~params:{ Specsyn.Annealing.default_params with steps = 200 }
       problem);
  check_sol "cluster" (Specsyn.Cluster.run ~k:3 problem)

let suite =
  [
    Alcotest.test_case "aggregates match oracle at creation" `Quick
      test_create_matches_oracle;
    Alcotest.test_case "random move sequences match oracle" `Quick
      test_random_moves_match_oracle;
    Alcotest.test_case "group moves are atomic" `Quick test_group_moves_atomic;
    Alcotest.test_case "infeasible moves leave state unchanged" `Quick
      test_infeasible_move_leaves_state;
    Alcotest.test_case "transaction discipline enforced" `Quick
      test_transaction_discipline;
    Alcotest.test_case "candidates match comps_for_node" `Quick
      test_candidates_match_search;
    Alcotest.test_case "moves_to reaches its target" `Quick test_moves_to_reaches_target;
    Alcotest.test_case "algorithm costs equal oracle costs" `Quick
      test_engine_algorithms_agree_with_oracle;
  ]
