open Slif_util

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 13 in
    Alcotest.(check bool) "0 <= v < 13" true (v >= 0 && v < 13)
  done;
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_prng_varies () =
  let rng = Prng.create 3 in
  let values = List.init 50 (fun _ -> Prng.int rng 1000000) in
  let distinct = List.sort_uniq compare values in
  Alcotest.(check bool) "not constant" true (List.length distinct > 40)

let test_prng_invalid_bound () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: non-positive bound")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_split_independent () =
  let a = Prng.create 11 in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_copy () =
  let a = Prng.create 5 in
  ignore (Prng.int a 10);
  let b = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.int a 1000) (Prng.int b 1000)

let test_table_render () =
  let t = Table.create ~header:[ "name"; "count" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "23" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "header + separator + 2 rows" 4 (List.length lines);
  (* Numeric column is right-aligned. *)
  Alcotest.(check bool) "right-aligned count" true
    (match lines with
    | _ :: _ :: r1 :: r2 :: _ ->
        String.length r1 = String.length r2
        && String.get r1 (String.length r1 - 1) = '1'
    | _ -> false)

let test_table_width_mismatch () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let suite =
  [
    Alcotest.test_case "prng is deterministic per seed" `Quick test_prng_deterministic;
    Alcotest.test_case "prng respects bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng varies" `Quick test_prng_varies;
    Alcotest.test_case "prng rejects bad bound" `Quick test_prng_invalid_bound;
    Alcotest.test_case "prng split independence" `Quick test_prng_split_independent;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    Alcotest.test_case "table renders aligned" `Quick test_table_render;
    Alcotest.test_case "table rejects ragged rows" `Quick test_table_width_mismatch;
  ]
