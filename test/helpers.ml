(** Shared fixtures for the test suites. *)

let fuzzy_design = lazy (Vhdl.Parser.parse Specs.Spec_fuzzy.text)

let fuzzy_sem = lazy (Vhdl.Sem.build (Lazy.force fuzzy_design))

let fuzzy_slif =
  lazy
    (let sem = Lazy.force fuzzy_sem in
     Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem))

(* A small single-process design used by focused unit tests. *)
let tiny_source =
  {|entity tiny is
  port ( a : in integer range 0 to 15; y : out integer range 0 to 15 );
end;
architecture b of tiny is
  shared variable v : integer range 0 to 15;
  shared variable w : integer range 0 to 15;
  procedure helper is
  begin
    w := v + 1;
  end helper;
begin
  main: process
  begin
    v := a;
    helper;
    helper;
    y <= w;
    wait for 10 us;
  end process;
end;
|}

let tiny_sem = lazy (Vhdl.Sem.build (Vhdl.Parser.parse tiny_source))

let tiny_slif =
  lazy
    (let sem = Lazy.force tiny_sem in
     Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem))

(* One processor + one ASIC + one bus, everything mapped to the processor
   except nothing; channels all on the bus. *)
let proc_asic_components (slif : Slif.Types.t) =
  Slif.Types.with_components slif
    ~procs:
      [
        {
          Slif.Types.p_id = 0;
          p_name = "cpu";
          p_kind = Slif.Types.Standard;
          p_tech = "cpu32";
          p_size_constraint = None;
          p_io_constraint = None;
        };
        {
          Slif.Types.p_id = 1;
          p_name = "asic";
          p_kind = Slif.Types.Custom;
          p_tech = "asic_gal";
          p_size_constraint = None;
          p_io_constraint = None;
        };
      ]
    ~mems:
      [ { Slif.Types.m_id = 0; m_name = "ram"; m_tech = "sram16"; m_size_constraint = None } ]
    ~buses:
      [
        {
          Slif.Types.b_id = 0;
          b_name = "sysbus";
          b_bitwidth = 16;
          b_ts_us = 0.04;
          b_td_us = 0.25;
          b_capacity_mbps = Some 64.0;
          b_ts_by_tech = [];
          b_td_by_pair = [];
        };
      ]

(* Map every node to processor 0 and every channel to bus 0. *)
let all_on_cpu slif =
  let s = proc_asic_components slif in
  let part = Slif.Partition.create s in
  Array.iteri
    (fun i _ -> Slif.Partition.assign_node part ~node:i (Slif.Partition.Cproc 0))
    s.Slif.Types.nodes;
  Slif.Partition.assign_all_chans part ~bus:0;
  (s, part)

(* --- Regression corpus ---------------------------------------------------

   [corpus/<name>.seed] stores one generator seed per line ('#' comments
   and blank lines allowed).  When a generative test fails, its seed is
   appended to the corpus file so the exact failing input is replayed —
   deterministically and first — on every later run.  [replay_corpus]
   is a no-op when the corpus file does not exist. *)

let corpus_seeds name =
  let path = Filename.concat "corpus" (name ^ ".seed") in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let seeds = ref [] in
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" && line.[0] <> '#' then
               match int_of_string_opt line with
               | Some seed -> seeds := seed :: !seeds
               | None -> failwith (Printf.sprintf "corpus %s: bad line %S" name line)
           done
         with End_of_file -> ());
        List.rev !seeds)
  end

let replay_corpus name check =
  List.iter
    (fun seed ->
      try check seed
      with e ->
        Alcotest.failf "corpus %s: stored seed %d regressed (%s)" name seed
          (Printexc.to_string e))
    (corpus_seeds name)
