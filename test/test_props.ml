(* Property-based tests over randomly generated access graphs. *)

open QCheck

(* --- Random SLIF generator ------------------------------------------------

   Generates an annotated SLIF with [nb] behaviors (node 0 is a process),
   [nv] variables, acyclic call channels (src < dst among behaviors), and
   var/port channels; two processors sharing one technology "tp", a second
   technology "ta", one memory "tm", and one bus.  All weights positive. *)

type gslif = { slif : Slif.Types.t; seed : int }

let mk_node id name kind ict size =
  { Slif.Types.n_id = id; n_name = name; n_kind = kind; n_ict = ict; n_size = size }

let gen_slif_of_seed seed =
  let rng = Slif_util.Prng.create seed in
  let nb = 2 + Slif_util.Prng.int rng 5 in
  let nv = 1 + Slif_util.Prng.int rng 5 in
  let fl lo hi = lo +. Slif_util.Prng.float rng (hi -. lo) in
  let behaviors =
    List.init nb (fun i ->
        mk_node i (Printf.sprintf "b%d" i)
          (Slif.Types.Behavior { is_process = i = 0 })
          [ ("tp", fl 1.0 20.0); ("ta", fl 0.5 10.0) ]
          [ ("tp", fl 10.0 200.0); ("ta", fl 50.0 900.0) ])
  in
  let variables =
    List.init nv (fun i ->
        let bits = 1 + Slif_util.Prng.int rng 64 in
        mk_node (nb + i)
          (Printf.sprintf "v%d" i)
          (Slif.Types.Variable { storage_bits = bits * 4; transfer_bits = bits })
          [ ("tp", fl 0.1 2.0); ("ta", fl 0.1 2.0); ("tm", fl 0.1 4.0) ]
          [ ("tp", fl 1.0 50.0); ("ta", fl 8.0 300.0); ("tm", fl 1.0 20.0) ])
  in
  let nodes = Array.of_list (behaviors @ variables) in
  let ports = [| { Slif.Types.pt_id = 0; pt_name = "p0"; pt_bits = 8; pt_dir = Slif.Types.Pout } |] in
  let chans = ref [] in
  let next_id = ref 0 in
  let add_chan src dst bits kind =
    let avg = fl 0.5 8.0 in
    let c =
      {
        Slif.Types.c_id = !next_id;
        c_src = src;
        c_dst = dst;
        c_accfreq = avg;
        c_accfreq_min = avg *. fl 0.1 1.0;
        c_accfreq_max = avg *. (1.0 +. fl 0.0 2.0);
        c_bits = bits;
        c_tag = None;
        c_kind = kind;
      }
    in
    incr next_id;
    chans := c :: !chans
  in
  (* Acyclic calls: each behavior may call higher-numbered behaviors. *)
  for src = 0 to nb - 2 do
    let n_calls = Slif_util.Prng.int rng 3 in
    for _ = 1 to n_calls do
      let dst = src + 1 + Slif_util.Prng.int rng (nb - src - 1) in
      add_chan src (Slif.Types.Dnode dst) (8 + Slif_util.Prng.int rng 24) Slif.Types.Call
    done
  done;
  (* Variable accesses. *)
  for src = 0 to nb - 1 do
    let n_acc = 1 + Slif_util.Prng.int rng 3 in
    for _ = 1 to n_acc do
      let v = nb + Slif_util.Prng.int rng nv in
      let bits =
        match nodes.(v).Slif.Types.n_kind with
        | Slif.Types.Variable { transfer_bits; _ } -> transfer_bits
        | _ -> 8
      in
      add_chan src (Slif.Types.Dnode v) bits Slif.Types.Var_access
    done
  done;
  (* The process touches the port. *)
  add_chan 0 (Slif.Types.Dport 0) 8 Slif.Types.Port_access;
  let chans = Array.of_list (List.rev !chans) in
  let procs =
    [|
      { Slif.Types.p_id = 0; p_name = "cpu0"; p_kind = Slif.Types.Standard; p_tech = "tp";
        p_size_constraint = None; p_io_constraint = None };
      { Slif.Types.p_id = 1; p_name = "cpu1"; p_kind = Slif.Types.Standard; p_tech = "tp";
        p_size_constraint = None; p_io_constraint = None };
      { Slif.Types.p_id = 2; p_name = "hw"; p_kind = Slif.Types.Custom; p_tech = "ta";
        p_size_constraint = None; p_io_constraint = None };
    |]
  in
  let mems =
    [| { Slif.Types.m_id = 0; m_name = "ram"; m_tech = "tm"; m_size_constraint = None } |]
  in
  let buses =
    [|
      { Slif.Types.b_id = 0; b_name = "bus"; b_bitwidth = 16; b_ts_us = 0.5; b_td_us = 2.5;
        b_capacity_mbps = None; b_ts_by_tech = []; b_td_by_pair = [] };
    |]
  in
  {
    slif =
      { Slif.Types.design_name = Printf.sprintf "gen%d" seed; nodes; ports; chans; procs;
        mems; buses };
    seed;
  }

let arb_slif =
  make ~print:(fun g -> Printf.sprintf "seed=%d\n%s" g.seed (Slif.Text.to_string g.slif))
    (Gen.map gen_slif_of_seed Gen.nat)

let random_partition ?(mems_allowed = true) rng (s : Slif.Types.t) =
  let part = Slif.Partition.create s in
  Array.iteri
    (fun i (n : Slif.Types.node) ->
      let comp =
        if Slif.Types.is_behavior n || not mems_allowed then
          Slif.Partition.Cproc (Slif_util.Prng.int rng (Array.length s.procs))
        else if Slif_util.Prng.int rng 4 = 0 then Slif.Partition.Cmem 0
        else Slif.Partition.Cproc (Slif_util.Prng.int rng (Array.length s.procs))
      in
      Slif.Partition.assign_node part ~node:i comp)
    s.nodes;
  Slif.Partition.assign_all_chans part ~bus:0;
  part

(* --- Properties ------------------------------------------------------------

   The core invariants are named predicates so the regression corpus
   (test/corpus/props.seed, replayed by [test_corpus_replay] before the
   generative pass) can re-run them on stored seeds. *)

let check_text_roundtrip g = Slif.Text.of_string (Slif.Text.to_string g.slif) = g.slif

let check_random_partition_proper g =
  let rng = Slif_util.Prng.create (g.seed + 1) in
  Slif.Validate.is_proper (random_partition rng g.slif)

let prop_text_roundtrip =
  Test.make ~name:"Text.of_string (to_string s) = s" ~count:100 arb_slif
    check_text_roundtrip

let prop_random_partition_proper =
  Test.make ~name:"random partitions are proper" ~count:100 arb_slif
    check_random_partition_proper

let check_min_le_avg_le_max g =
  let rng = Slif_util.Prng.create (g.seed + 2) in
  let part = random_partition rng g.slif in
  let graph = Slif.Graph.make g.slif in
  let avg = Slif.Estimate.exectime_us (Slif.Estimate.create graph part) 0 in
  let mn =
    Slif.Estimate.exectime_us (Slif.Estimate.create ~mode:Slif.Estimate.Min graph part) 0
  in
  let mx =
    Slif.Estimate.exectime_us (Slif.Estimate.create ~mode:Slif.Estimate.Max graph part) 0
  in
  mn <= avg +. 1e-9 && avg <= mx +. 1e-9

let prop_min_le_avg_le_max =
  Test.make ~name:"min <= avg <= max exectime" ~count:100 arb_slif check_min_le_avg_le_max

let prop_exectime_positive =
  Test.make ~name:"exectime exceeds own ict" ~count:100 arb_slif (fun g ->
      let rng = Slif_util.Prng.create (g.seed + 3) in
      let part = random_partition rng g.slif in
      let graph = Slif.Graph.make g.slif in
      let est = Slif.Estimate.create graph part in
      Array.for_all
        (fun (n : Slif.Types.node) ->
          not (Slif.Types.is_behavior n)
          ||
          let tech = Slif.Partition.comp_tech g.slif (Slif.Partition.comp_of_exn part n.n_id) in
          let ict = Option.value (Slif.Types.ict_on n tech) ~default:0.0 in
          Slif.Estimate.exectime_us est n.n_id >= ict -. 1e-9)
        g.slif.Slif.Types.nodes)

let prop_same_tech_placement_invariant_when_ts_eq_td =
  Test.make ~name:"with ts=td, exectime ignores placement across same-tech processors"
    ~count:60 arb_slif (fun g ->
      let buses =
        Array.map (fun b -> { b with Slif.Types.b_td_us = b.Slif.Types.b_ts_us }) g.slif.Slif.Types.buses
      in
      let s = { g.slif with Slif.Types.buses } in
      let graph = Slif.Graph.make s in
      (* Everything on cpu0 vs a random split between cpu0/cpu1 (same tech,
         variables included, no memory). *)
      let part0 = Slif.Partition.create s in
      Array.iteri
        (fun i _ -> Slif.Partition.assign_node part0 ~node:i (Slif.Partition.Cproc 0))
        s.Slif.Types.nodes;
      Slif.Partition.assign_all_chans part0 ~bus:0;
      let rng = Slif_util.Prng.create (g.seed + 4) in
      let part1 = Slif.Partition.create s in
      Array.iteri
        (fun i _ ->
          Slif.Partition.assign_node part1 ~node:i
            (Slif.Partition.Cproc (Slif_util.Prng.int rng 2)))
        s.Slif.Types.nodes;
      Slif.Partition.assign_all_chans part1 ~bus:0;
      let t0 = Slif.Estimate.exectime_us (Slif.Estimate.create graph part0) 0 in
      let t1 = Slif.Estimate.exectime_us (Slif.Estimate.create graph part1) 0 in
      abs_float (t0 -. t1) < 1e-6 *. (1.0 +. abs_float t0))

let prop_size_conserved_by_moves =
  Test.make ~name:"moving a node conserves total same-tech size" ~count:100 arb_slif
    (fun g ->
      let rng = Slif_util.Prng.create (g.seed + 5) in
      (* cpu0 and cpu1 share technology tp: moving any node between them
         keeps the sum of their sizes constant. *)
      let part = Slif.Partition.create g.slif in
      Array.iteri
        (fun i _ ->
          Slif.Partition.assign_node part ~node:i
            (Slif.Partition.Cproc (Slif_util.Prng.int rng 2)))
        g.slif.Slif.Types.nodes;
      Slif.Partition.assign_all_chans part ~bus:0;
      let graph = Slif.Graph.make g.slif in
      let est = Slif.Estimate.create graph part in
      let total () =
        Slif.Estimate.size est (Slif.Partition.Cproc 0)
        +. Slif.Estimate.size est (Slif.Partition.Cproc 1)
      in
      let before = total () in
      let node = Slif_util.Prng.int rng (Array.length g.slif.Slif.Types.nodes) in
      let target =
        match Slif.Partition.comp_of_exn part node with
        | Slif.Partition.Cproc 0 -> Slif.Partition.Cproc 1
        | _ -> Slif.Partition.Cproc 0
      in
      Slif.Partition.assign_node part ~node target;
      abs_float (total () -. before) < 1e-6)

let prop_io_zero_when_colocated =
  Test.make ~name:"io = 0 for a component holding everything but ports" ~count:100 arb_slif
    (fun g ->
      (* Without the port channel, everything on one component has no cut. *)
      let chans =
        Array.of_list
          (Array.to_list g.slif.Slif.Types.chans
          |> List.filter (fun (c : Slif.Types.channel) ->
                 match c.c_dst with Slif.Types.Dport _ -> false | _ -> true))
      in
      let chans = Array.mapi (fun i c -> { c with Slif.Types.c_id = i }) chans in
      let s = { g.slif with Slif.Types.chans } in
      let part = Slif.Partition.create s in
      Array.iteri
        (fun i _ -> Slif.Partition.assign_node part ~node:i (Slif.Partition.Cproc 0))
        s.Slif.Types.nodes;
      Slif.Partition.assign_all_chans part ~bus:0;
      let est = Slif.Estimate.create (Slif.Graph.make s) part in
      Slif.Estimate.io_pins est (Slif.Partition.Cproc 0) = 0)

let prop_incremental_matches_full =
  Test.make ~name:"incremental invalidation equals fresh estimation" ~count:60 arb_slif
    (fun g ->
      let rng = Slif_util.Prng.create (g.seed + 6) in
      let part = random_partition rng g.slif in
      let graph = Slif.Graph.make g.slif in
      let est = Slif.Estimate.create graph part in
      ignore (Slif.Estimate.exectime_us est 0);
      (* Random sequence of moves, each followed by note_node_moved. *)
      let ok = ref true in
      for _ = 1 to 5 do
        let node = Slif_util.Prng.int rng (Array.length g.slif.Slif.Types.nodes) in
        let comp =
          if Slif.Types.is_behavior g.slif.Slif.Types.nodes.(node) then
            Slif.Partition.Cproc (Slif_util.Prng.int rng 3)
          else Slif.Partition.Cmem 0
        in
        Slif.Partition.assign_node part ~node comp;
        Slif.Estimate.note_node_moved est node;
        let incr = Slif.Estimate.exectime_us est 0 in
        let fresh = Slif.Estimate.exectime_us (Slif.Estimate.create graph part) 0 in
        if abs_float (incr -. fresh) > 1e-9 *. (1.0 +. abs_float fresh) then ok := false
      done;
      !ok)

let prop_bus_bitrate_is_sum =
  Test.make ~name:"bus bitrate equals sum of channel bitrates" ~count:60 arb_slif (fun g ->
      let rng = Slif_util.Prng.create (g.seed + 7) in
      let part = random_partition rng g.slif in
      let est = Slif.Estimate.create (Slif.Graph.make g.slif) part in
      let by_sum =
        Array.fold_left
          (fun acc c -> acc +. Slif.Estimate.chan_bitrate_mbps est c)
          0.0 g.slif.Slif.Types.chans
      in
      abs_float (by_sum -. Slif.Estimate.bus_bitrate_mbps est 0)
      < 1e-6 *. (1.0 +. abs_float by_sum))

let prop_bits_for_range_brute_force =
  Test.make ~name:"bits_for_range covers every value in range" ~count:200
    (pair (int_range (-300) 300) (int_range 0 300))
    (fun (lo, span) ->
      let hi = lo + span in
      let bits = Slif_util.Bitmath.bits_for_range ~lo ~hi in
      let representable =
        if lo >= 0 then float_of_int hi < Float.pow 2.0 (float_of_int bits)
        else
          float_of_int hi < Float.pow 2.0 (float_of_int (bits - 1))
          && float_of_int lo >= -.Float.pow 2.0 (float_of_int (bits - 1))
      in
      representable)

let prop_prng_int_bounds =
  Test.make ~name:"prng int stays in bounds" ~count:200
    (pair small_nat (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Slif_util.Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Slif_util.Prng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_transform_merge_conserves_weights =
  Test.make ~name:"process merge conserves total ict/size" ~count:60 arb_slif (fun g ->
      (* Merge requires two processes; promote b1 to a process for the test. *)
      let nodes =
        Array.map
          (fun (n : Slif.Types.node) ->
            if n.n_id = 1 then { n with Slif.Types.n_kind = Slif.Types.Behavior { is_process = true } }
            else n)
          g.slif.Slif.Types.nodes
      in
      let s = { g.slif with Slif.Types.nodes } in
      let sum_weights (slif : Slif.Types.t) tech =
        Array.fold_left
          (fun acc (n : Slif.Types.node) ->
            acc +. Option.value (Slif.Types.ict_on n tech) ~default:0.0)
          0.0 slif.Slif.Types.nodes
      in
      let before = sum_weights s "tp" in
      let merged = Specsyn.Transform.merge_processes s "b0" "b1" in
      let after = sum_weights merged "tp" in
      abs_float (before -. after) < 1e-9 *. (1.0 +. abs_float before))

(* Stored regression seeds run first: any seed that once broke a property
   is pinned in test/corpus/props.seed and replayed deterministically
   before the generative pass draws fresh ones. *)
let test_corpus_replay () =
  Helpers.replay_corpus "props" (fun seed ->
      let g = gen_slif_of_seed seed in
      List.iter
        (fun (label, check) ->
          if not (check g) then Alcotest.failf "%s violated by seed %d" label seed)
        [
          ("text roundtrip", check_text_roundtrip);
          ("random partitions proper", check_random_partition_proper);
          ("min <= avg <= max exectime", check_min_le_avg_le_max);
        ])

let suite =
  (* A fixed random state keeps the generated corpus identical run to run. *)
  Alcotest.test_case "corpus seeds replay clean" `Quick test_corpus_replay
  :: List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 19941995 |]))
    [
      prop_text_roundtrip;
      prop_random_partition_proper;
      prop_min_le_avg_le_max;
      prop_exectime_positive;
      prop_same_tech_placement_invariant_when_ts_eq_td;
      prop_size_conserved_by_moves;
      prop_io_zero_when_colocated;
      prop_incremental_matches_full;
      prop_bus_bitrate_is_sum;
      prop_bits_for_range_brute_force;
      prop_prng_int_bounds;
      prop_transform_merge_conserves_weights;
    ]
