(* End-user smoke tests: drive the built slif binary. *)

let cli = "../bin/slif_cli.exe"

let available = lazy (Sys.file_exists cli)

let run_cli args =
  let out = Filename.temp_file "slif_cli" ".out" in
  let code = Sys.command (Printf.sprintf "%s %s > %s 2>&1" cli args out) in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let check_cli name args expect =
  if not (Lazy.force available) then ()
  else begin
    let code, text = run_cli args in
    Alcotest.(check int) (name ^ " exit code") 0 code;
    Alcotest.(check bool)
      (Printf.sprintf "%s output mentions %S" name expect)
      true (contains expect text)
  end

let test_figure4 () = check_cli "figure4" "figure4" "T-slif"

let test_build_stats () = check_cli "build" "build fuzzy" "fuzzymain"

let test_build_dot () = check_cli "dot" "build fuzzy --dot" "digraph"

let test_build_text () = check_cli "text" "build vol --text" "slif volmeter"

let test_compare () = check_cli "compare" "compare vol" "SLIF-AG"

let test_estimate_bounds () = check_cli "bounds" "estimate vol --bounds" "max(us)"

let test_partition_greedy () = check_cli "partition" "partition vol -a greedy" "cost"

let test_dump_and_reload () =
  if not (Lazy.force available) then ()
  else begin
    let tmp = Filename.temp_file "slif" ".vhd" in
    let code = Sys.command (Printf.sprintf "%s dump-spec vol > %s" cli tmp) in
    Alcotest.(check int) "dump exit" 0 code;
    let code, text = run_cli (Printf.sprintf "build --file %s" tmp) in
    Sys.remove tmp;
    Alcotest.(check int) "reload exit" 0 code;
    Alcotest.(check bool) "reload finds volmain" true (contains "volmain" text)
  end

let test_save_load_decision () =
  if not (Lazy.force available) then ()
  else begin
    let tmp = Filename.temp_file "slif" ".decision" in
    let code, _ = run_cli (Printf.sprintf "partition vol -a greedy --save %s" tmp) in
    Alcotest.(check int) "save exit" 0 code;
    let code, text = run_cli (Printf.sprintf "partition vol --load %s" tmp) in
    Sys.remove tmp;
    Alcotest.(check int) "load exit" 0 code;
    Alcotest.(check bool) "replay acknowledged" true (contains "recorded decision" text)
  end

(* The observability flags: both files must come back as valid JSON, the
   metrics must show the estimator and search counters firing, and the
   trace must carry span events (the acceptance bar for Perfetto). *)
let test_obs_flags () =
  if not (Lazy.force available) then ()
  else begin
    let m = Filename.temp_file "slif" ".metrics.json" in
    let t = Filename.temp_file "slif" ".trace.json" in
    let code, _ = run_cli (Printf.sprintf "figure4 --metrics %s --trace %s" m t) in
    Alcotest.(check int) "figure4 exit" 0 code;
    let read path =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    let parse what path =
      match Slif_obs.Json.parse (read path) with
      | Ok json -> json
      | Error msg -> Alcotest.failf "%s is invalid JSON: %s" what msg
    in
    let metrics = parse "metrics" m in
    let trace = parse "trace" t in
    Sys.remove m;
    Sys.remove t;
    let counter name =
      match Option.bind (Slif_obs.Json.member "counters" metrics)
              (Slif_obs.Json.member name)
      with
      | Some (Slif_obs.Json.Int v) -> v
      | _ -> 0
    in
    Alcotest.(check bool) "memo hits recorded" true (counter "estimate.memo_hit" > 0);
    Alcotest.(check bool) "memo misses recorded" true (counter "estimate.memo_miss" > 0);
    Alcotest.(check bool) "partitions scored" true
      (counter "search.partitions_scored" > 0);
    match Slif_obs.Json.member "traceEvents" trace with
    | Some (Slif_obs.Json.List events) ->
        Alcotest.(check bool) "trace has span events" true (List.length events > 4)
    | _ -> Alcotest.fail "traceEvents missing from trace export"
  end

let test_explore_jobs_differential () =
  if not (Lazy.force available) then ()
  else begin
    let run jobs =
      let code, text =
        run_cli (Printf.sprintf "partition fuzzy --explore -j %d --no-timings" jobs)
      in
      Alcotest.(check int) (Printf.sprintf "-j %d exit code" jobs) 0 code;
      text
    in
    Alcotest.(check string) "explore -j 4 byte-identical to -j 1" (run 1) (run 4)
  end

let test_explore_rejects_bad_jobs () =
  if not (Lazy.force available) then ()
  else begin
    let code, _ = run_cli "partition fuzzy --explore -j 0" in
    Alcotest.(check bool) "nonzero exit" true (code <> 0)
  end

let test_unknown_spec_fails () =
  if not (Lazy.force available) then ()
  else begin
    let code, _ = run_cli "build nonsense" in
    Alcotest.(check bool) "nonzero exit" true (code <> 0)
  end

(* --- The persistent store and cache ---------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let temp_dir () =
  let path = Filename.temp_file "slif_cli" ".dir" in
  Sys.remove path;
  path

let rec rm_rf path =
  if not (Sys.file_exists path) then ()
  else if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* Cold build and warm load must print the same bytes for every
   cache-aware subcommand. *)
let test_cache_warm_cold_identical () =
  if not (Lazy.force available) then ()
  else begin
    let dir = temp_dir () in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        List.iter
          (fun args ->
            let code, plain = run_cli args in
            Alcotest.(check int) (args ^ " plain exit") 0 code;
            let code, cold = run_cli (Printf.sprintf "%s --cache-dir %s" args dir) in
            Alcotest.(check int) (args ^ " cold exit") 0 code;
            let code, warm = run_cli (Printf.sprintf "%s --cache-dir %s" args dir) in
            Alcotest.(check int) (args ^ " warm exit") 0 code;
            Alcotest.(check string) (args ^ " cold = plain") plain cold;
            Alcotest.(check string) (args ^ " warm = cold") cold warm)
          [ "build fuzzy"; "estimate fuzzy --bounds"; "partition fuzzy -a greedy" ])
  end

let check_one_line_failure name args needle =
  if not (Lazy.force available) then ()
  else begin
    let code, text = run_cli args in
    Alcotest.(check bool) (name ^ " nonzero exit") true (code <> 0);
    Alcotest.(check bool)
      (Printf.sprintf "%s diagnostic mentions %S" name needle)
      true (contains needle text);
    Alcotest.(check bool) (name ^ " no raw exception") false (contains "Fatal error" text)
  end

let test_missing_source_file () =
  check_one_line_failure "missing --file" "build --file /no/such/file.vhd" "slif:"

let test_unreadable_cache_dir () =
  if not (Lazy.force available) then ()
  else begin
    (* A path under a regular file can never become a directory. *)
    let file = Filename.temp_file "slif_cli" ".notadir" in
    Fun.protect
      ~finally:(fun () -> Sys.remove file)
      (fun () ->
        check_one_line_failure "unreadable cache dir"
          (Printf.sprintf "build fuzzy --cache-dir %s" (Filename.concat file "sub"))
          "slif:")
  end

let test_malformed_store_file () =
  if not (Lazy.force available) then ()
  else begin
    let junk = Filename.temp_file "slif_cli" ".slifstore" in
    Fun.protect
      ~finally:(fun () -> Sys.remove junk)
      (fun () ->
        let oc = open_out_bin junk in
        output_string oc "this is not a store container";
        close_out oc;
        check_one_line_failure "store info on junk"
          (Printf.sprintf "store info %s" junk)
          "magic";
        check_one_line_failure "partition --load on junk"
          (Printf.sprintf "partition fuzzy --load %s" junk)
          "slif:")
  end

let test_store_write_info () =
  if not (Lazy.force available) then ()
  else begin
    let out = Filename.temp_file "slif_cli" ".slifstore" in
    Fun.protect
      ~finally:(fun () -> Sys.remove out)
      (fun () ->
        let code, _ = run_cli (Printf.sprintf "store write vol -o %s" out) in
        Alcotest.(check int) "write exit" 0 code;
        let code, text = run_cli (Printf.sprintf "store info %s" out) in
        Alcotest.(check int) "info exit" 0 code;
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("info mentions " ^ needle) true (contains needle text))
          [ "volmeter"; "NODE"; "CHAN"; "format:" ])
  end

(* Legacy text decisions (pre-store format) must still replay. *)
let test_load_legacy_text_decision () =
  if not (Lazy.force available) then ()
  else begin
    let tmp = Filename.temp_file "slif" ".decision" in
    Fun.protect
      ~finally:(fun () -> Sys.remove tmp)
      (fun () ->
        let source = (Option.get (Specs.Registry.find "vol")).Specs.Registry.source in
        let slif = Slif_server.Ops.annotated source in
        let s = Slif_server.Ops.apply_proc_asic slif in
        let graph = Slif.Graph.make s in
        let problem = Specsyn.Search.problem graph in
        let solution = Specsyn.Greedy.run problem in
        let oc = open_out_bin tmp in
        output_string oc
          (Slif.Decision.to_string ~note:"legacy" solution.Specsyn.Search.part);
        close_out oc;
        let code, text = run_cli (Printf.sprintf "partition vol --load %s" tmp) in
        Alcotest.(check int) "legacy load exit" 0 code;
        Alcotest.(check bool) "legacy note surfaced" true (contains "legacy" text))
  end

(* Golden regression: a committed store-format decision file must keep
   replaying to the committed report, byte for byte.  Any encoding or
   estimator change that breaks old files shows up here. *)
let test_golden_decision_replay () =
  if not (Lazy.force available) then ()
  else if not (Sys.file_exists "golden/vol_greedy.decn") then ()
  else begin
    let code, text = run_cli "partition vol --load golden/vol_greedy.decn" in
    Alcotest.(check int) "golden replay exit" 0 code;
    Alcotest.(check string) "golden replay output"
      (read_file "golden/vol_greedy.report.txt")
      text
  end

let test_figure4_jobs () =
  if not (Lazy.force available) then ()
  else begin
    let code, text = run_cli "figure4 -j 2" in
    Alcotest.(check int) "figure4 -j 2 exit" 0 code;
    Alcotest.(check bool) "figure4 -j 2 output" true (contains "T-slif" text);
    let code, _ = run_cli "figure4 -j 0" in
    Alcotest.(check bool) "figure4 -j 0 rejected" true (code <> 0)
  end

let suite =
  [
    Alcotest.test_case "figure4 runs" `Slow test_figure4;
    Alcotest.test_case "build prints stats" `Slow test_build_stats;
    Alcotest.test_case "build --dot" `Slow test_build_dot;
    Alcotest.test_case "build --text" `Slow test_build_text;
    Alcotest.test_case "compare runs" `Slow test_compare;
    Alcotest.test_case "estimate --bounds" `Slow test_estimate_bounds;
    Alcotest.test_case "partition greedy" `Slow test_partition_greedy;
    Alcotest.test_case "dump-spec round-trips" `Slow test_dump_and_reload;
    Alcotest.test_case "decision save/load" `Slow test_save_load_decision;
    Alcotest.test_case "--trace/--metrics export" `Slow test_obs_flags;
    Alcotest.test_case "explore -j differential" `Slow test_explore_jobs_differential;
    Alcotest.test_case "explore -j 0 rejected" `Slow test_explore_rejects_bad_jobs;
    Alcotest.test_case "unknown spec rejected" `Slow test_unknown_spec_fails;
    Alcotest.test_case "--cache-dir warm/cold identical" `Slow test_cache_warm_cold_identical;
    Alcotest.test_case "missing source file diagnostic" `Slow test_missing_source_file;
    Alcotest.test_case "unreadable cache dir diagnostic" `Slow test_unreadable_cache_dir;
    Alcotest.test_case "malformed store file diagnostic" `Slow test_malformed_store_file;
    Alcotest.test_case "store write + info" `Slow test_store_write_info;
    Alcotest.test_case "legacy text decision replays" `Slow test_load_legacy_text_decision;
    Alcotest.test_case "golden decision replay" `Slow test_golden_decision_replay;
    Alcotest.test_case "figure4 -j" `Slow test_figure4_jobs;
  ]
