(* The synthetic graph generator: determinism (across runs and domain
   counts), structural invariants per family, and end-to-end use by the
   estimator and the store. *)

module Synth = Slif_synth.Synth
module Store = Slif_store.Store

let params ?(nodes = 3_000) family = Synth.default_params ~seed:99 ~nodes family

let all_family_params =
  lazy (List.map (fun f -> (Synth.family_to_string f, params f)) Synth.all_families)

(* --- Determinism ------------------------------------------------------------ *)

let test_deterministic_across_runs () =
  List.iter
    (fun (name, p) ->
      let a = Synth.generate p and b = Synth.generate p in
      Alcotest.(check bool) (name ^ ": two runs identical") true (Slif.Types.equal a b))
    (Lazy.force all_family_params)

let test_deterministic_across_jobs () =
  List.iter
    (fun (name, p) ->
      let serial = Synth.generate p in
      List.iter
        (fun jobs ->
          let parallel =
            Slif_util.Pool.with_pool ~jobs (fun pool -> Synth.generate ~pool p)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: -j %d identical to serial" name jobs)
            true
            (Slif.Types.equal serial parallel);
          (* Byte-identical store containers, both formats. *)
          Alcotest.(check string)
            (Printf.sprintf "%s: -j %d v1 bytes identical" name jobs)
            (Store.slif_to_string serial)
            (Store.slif_to_string parallel);
          Alcotest.(check string)
            (Printf.sprintf "%s: -j %d v2 bytes identical" name jobs)
            (Store.slif_to_string ~version:Store.format_version_v2 serial)
            (Store.slif_to_string ~version:Store.format_version_v2 parallel))
        [ 2; 5 ])
    (Lazy.force all_family_params)

let test_seed_changes_graph () =
  let p = params Synth.Mixed in
  let a = Synth.generate p and b = Synth.generate { p with seed = p.Synth.seed + 1 } in
  Alcotest.(check bool) "different seeds differ" false (Slif.Types.equal a b)

(* --- Structural invariants --------------------------------------------------- *)

let test_counts_and_shape () =
  List.iter
    (fun (name, p) ->
      let s = Synth.generate p in
      let nb = Synth.behaviors p and nv = Synth.variables p in
      Alcotest.(check int) (name ^ ": node count") p.Synth.nodes
        (Array.length s.Slif.Types.nodes);
      Alcotest.(check int) (name ^ ": channel count") (Synth.channels p)
        (Array.length s.Slif.Types.chans);
      Alcotest.(check int) (name ^ ": behaviors + variables") p.Synth.nodes (nb + nv);
      Array.iteri
        (fun i (n : Slif.Types.node) ->
          if n.Slif.Types.n_id <> i then
            Alcotest.failf "%s: node %d carries id %d" name i n.Slif.Types.n_id;
          let is_b = Slif.Types.is_behavior n in
          if is_b <> (i < nb) then
            Alcotest.failf "%s: node %d kind out of band layout" name i)
        s.Slif.Types.nodes;
      Array.iteri
        (fun i (c : Slif.Types.channel) ->
          if c.Slif.Types.c_id <> i then
            Alcotest.failf "%s: channel %d carries id %d" name i c.Slif.Types.c_id;
          if not (Slif.Types.is_behavior s.Slif.Types.nodes.(c.Slif.Types.c_src)) then
            Alcotest.failf "%s: channel %d source is not a behavior" name i;
          match (c.Slif.Types.c_kind, c.Slif.Types.c_dst) with
          | Slif.Types.Call, Slif.Types.Dnode d ->
              if not (Slif.Types.is_behavior s.Slif.Types.nodes.(d)) then
                Alcotest.failf "%s: call channel %d targets a variable" name i;
              if d <= c.Slif.Types.c_src && d <> 0 then () (* parents precede children *)
          | Slif.Types.Var_access, Slif.Types.Dnode d ->
              if Slif.Types.is_behavior s.Slif.Types.nodes.(d) then
                Alcotest.failf "%s: var access %d targets a behavior" name i
          | _ -> Alcotest.failf "%s: channel %d has unexpected kind/dest" name i)
        s.Slif.Types.chans)
    (Lazy.force all_family_params)

let test_acyclic_and_estimable () =
  List.iter
    (fun (name, p) ->
      let s = Synth.generate p in
      let graph = Slif.Graph.make s in
      Alcotest.(check bool) (name ^ ": call graph acyclic") false
        (Slif.Graph.has_call_cycle graph);
      let part = Specsyn.Search.seed_partition s in
      Alcotest.(check bool) (name ^ ": seed partition proper") true
        (Slif.Validate.is_proper part);
      let est = Specsyn.Search.estimator graph part in
      let t = Slif.Estimate.exectime_us est 0 in
      if not (t > 0.0) then
        Alcotest.failf "%s: root exectime %f not positive" name t)
    (Lazy.force all_family_params)

(* A hostile depth is clamped: generation succeeds and the recursive
   estimator survives the deepest chains the clamp allows. *)
let test_depth_clamp () =
  let p =
    { (params ~nodes:(Synth.max_depth * 3) Synth.Call_tree) with Synth.depth = max_int }
  in
  let s = Synth.generate p in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  let est = Specsyn.Search.estimator graph part in
  ignore (Slif.Estimate.exectime_us est 0)

let test_family_names_roundtrip () =
  List.iter
    (fun f ->
      match Synth.family_of_string (Synth.family_to_string f) with
      | Ok f' when f' = f -> ()
      | Ok _ -> Alcotest.failf "%s parsed to a different family" (Synth.family_to_string f)
      | Error msg -> Alcotest.fail msg)
    Synth.all_families;
  match Synth.family_of_string "no-such-family" with
  | Ok _ -> Alcotest.fail "junk family name accepted"
  | Error _ -> ()

let test_bad_params_rejected () =
  let p = params Synth.Mixed in
  List.iter
    (fun bad ->
      match Synth.generate bad with
      | _ -> Alcotest.fail "invalid params accepted"
      | exception Invalid_argument _ -> ())
    [
      { p with Synth.nodes = 1 };
      { p with Synth.fanout = 0 };
      { p with Synth.sharing = -1 };
      { p with Synth.var_fraction = 1.5 };
    ]

(* The full tentpole path in miniature: synth -> v2 store -> lazy open
   -> decode -> estimate, bit-equal to estimating the original. *)
let test_store_roundtrip_estimates () =
  let p = params ~nodes:2_000 Synth.Shared_vars in
  let s = Synth.generate p in
  let path = Filename.temp_file "slif_synth" ".slifstore" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save_slif ~path ~version:Store.format_version_v2 s;
      let h =
        match Slif_store.Lazy_store.open_file path with
        | Ok h -> h
        | Error err -> Alcotest.failf "open_file: %s" (Store.error_message err)
      in
      let loaded, _prov =
        match Slif_store.Lazy_store.slif h with
        | Ok r -> r
        | Error err -> Alcotest.failf "decode: %s" (Store.error_message err)
      in
      let exectime slif =
        let graph = Slif.Graph.make slif in
        let part = Specsyn.Search.seed_partition slif in
        Slif.Estimate.exectime_us (Specsyn.Search.estimator graph part) 0
      in
      Alcotest.(check (float 0.0))
        "estimates bit-equal through the store" (exectime s) (exectime loaded))

let suite =
  [
    Alcotest.test_case "deterministic across runs" `Quick test_deterministic_across_runs;
    Alcotest.test_case "deterministic across jobs" `Quick test_deterministic_across_jobs;
    Alcotest.test_case "seed changes the graph" `Quick test_seed_changes_graph;
    Alcotest.test_case "counts and shape" `Quick test_counts_and_shape;
    Alcotest.test_case "acyclic and estimable" `Quick test_acyclic_and_estimable;
    Alcotest.test_case "depth clamp" `Quick test_depth_clamp;
    Alcotest.test_case "family names round-trip" `Quick test_family_names_roundtrip;
    Alcotest.test_case "bad params rejected" `Quick test_bad_params_rejected;
    Alcotest.test_case "store round-trip estimates" `Quick test_store_roundtrip_estimates;
  ]
