(* Parallel == serial differential layer.

   Every pool-driven sweep (explore, pareto, annealing restarts, random
   restarts) must be bit-identical to its serial run: same entry order,
   same costs, same evaluation counts, same partitions.  The pool itself
   is exercised for submission-order merging, deterministic failure and
   per-task PRNG streams, and the observability registry is stress-tested
   from eight concurrent domains. *)

module Obs = Slif_obs
module Pool = Slif_util.Pool
module Prng = Slif_util.Prng

let jobs_par = 4

(* --- Pool primitives ---------------------------------------------------- *)

let test_pool_map_order () =
  let tasks = List.init 100 Fun.id in
  let expect = List.map (fun x -> x * x) tasks in
  Pool.with_pool ~jobs:jobs_par (fun pool ->
      Alcotest.(check (list int))
        "submission order" expect
        (Pool.map pool (fun x -> x * x) tasks))

let test_pool_single_job () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
      Alcotest.(check (list int)) "serial pool" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_rejects_bad_jobs () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()))

let test_pool_exception_deterministic () =
  (* Several tasks fail; the lowest submission index must win no matter
     which domain reaches its failure first. *)
  Pool.with_pool ~jobs:jobs_par (fun pool ->
      Alcotest.check_raises "lowest failing index" (Failure "task 1") (fun () ->
          ignore
            (Pool.map pool
               (fun i -> if i mod 3 = 1 then failwith (Printf.sprintf "task %d" i) else i)
               (List.init 20 Fun.id))))

let test_pool_map_seeded_jobs_invariant () =
  let draws pool =
    Pool.map_seeded pool ~seed:42
      (fun rng _ -> List.init 5 (fun _ -> Prng.int rng 1_000_000))
      (List.init 16 Fun.id)
  in
  let serial = Pool.with_pool ~jobs:1 draws in
  let parallel = Pool.with_pool ~jobs:jobs_par draws in
  Alcotest.(check (list (list int))) "per-task streams jobs-invariant" serial parallel

let test_prng_derive_streams () =
  let take n rng = List.init n (fun _ -> Prng.int rng 1_000_000) in
  let s0 = take 20 (Prng.derive ~root:7 0) in
  let s0' = take 20 (Prng.derive ~root:7 0) in
  let s1 = take 20 (Prng.derive ~root:7 1) in
  Alcotest.(check (list int)) "derive is deterministic" s0 s0';
  Alcotest.(check bool) "streams differ" true (s0 <> s1);
  (* Guards against the naive [base + i*gamma] derivation, where stream
     i+1 is stream i advanced by one draw. *)
  Alcotest.(check bool) "stream 1 is not stream 0 shifted" true
    (List.tl s0 <> List.filteri (fun i _ -> i < 19) s1);
  Alcotest.check_raises "negative index" (Invalid_argument "Prng.derive: negative index")
    (fun () -> ignore (Prng.derive ~root:7 (-1)))

(* --- Explore differential ----------------------------------------------- *)

let light_algos =
  [
    Specsyn.Explore.Random 20;
    Specsyn.Explore.Greedy;
    Specsyn.Explore.Annealing { Specsyn.Annealing.default_params with steps = 200 };
  ]

let check_entries label (a : Specsyn.Explore.entry list) (b : Specsyn.Explore.entry list) =
  Alcotest.(check int) (label ^ ": entry count") (List.length a) (List.length b);
  List.iter2
    (fun (x : Specsyn.Explore.entry) (y : Specsyn.Explore.entry) ->
      Alcotest.(check string)
        (label ^ ": alloc")
        x.alloc.Specsyn.Alloc.alloc_name y.alloc.Specsyn.Alloc.alloc_name;
      Alcotest.(check string)
        (label ^ ": algo")
        (Specsyn.Explore.algo_name x.algo)
        (Specsyn.Explore.algo_name y.algo);
      Alcotest.(check (float 1e-9))
        (label ^ ": cost") x.solution.Specsyn.Search.cost y.solution.Specsyn.Search.cost;
      Alcotest.(check int)
        (label ^ ": evaluated") x.solution.Specsyn.Search.evaluated
        y.solution.Specsyn.Search.evaluated)
    a b

let explore_differential label ?(algos = light_algos) ~allocs slif =
  let serial = Specsyn.Explore.run ~jobs:1 ~algos ~allocs slif in
  let parallel = Specsyn.Explore.run ~jobs:jobs_par ~algos ~allocs slif in
  check_entries label serial parallel;
  (* The timing-free report must be byte-identical — what the CLI's
     [-j N --no-timings] differential relies on — and stay so at the
     finest restart slicing (one restart per pool task). *)
  let report = Specsyn.Report.explore_report ~timings:false in
  Alcotest.(check string) (label ^ ": report bytes") (report serial) (report parallel);
  Alcotest.(check string)
    (label ^ ": chunk-1 report bytes")
    (report serial)
    (report (Specsyn.Explore.run ~jobs:jobs_par ~chunk:1 ~algos ~allocs slif))

let test_explore_bundled () =
  let allocs = [ Specsyn.Alloc.proc_asic (); Specsyn.Alloc.proc_asic_mem () ] in
  List.iter
    (fun (name, slif) -> explore_differential name ~allocs (Lazy.force slif))
    [ ("fuzzy", Helpers.fuzzy_slif); ("tiny", Helpers.tiny_slif) ]

(* Fuzzed designs only carry weights for the generator's own techs
   (tp/ta/tm), so they are explored under an identity allocation built
   from their own component arrays. *)
let identity_alloc (s : Slif.Types.t) =
  {
    Specsyn.Alloc.alloc_name = "generated";
    procs = Array.to_list s.Slif.Types.procs;
    mems = Array.to_list s.Slif.Types.mems;
    buses = Array.to_list s.Slif.Types.buses;
  }

let fuzz_algos =
  [
    Specsyn.Explore.Random 10;
    Specsyn.Explore.Greedy;
    Specsyn.Explore.Annealing { Specsyn.Annealing.default_params with steps = 120 };
  ]

let explore_differential_seed seed =
  let g = Test_props.gen_slif_of_seed seed in
  let s = g.Test_props.slif in
  explore_differential
    (Printf.sprintf "gen%d" seed)
    ~algos:fuzz_algos
    ~allocs:[ identity_alloc s ]
    s

let test_explore_fuzzed () =
  Helpers.replay_corpus "parallel_explore" explore_differential_seed;
  for seed = 0 to 19 do
    explore_differential_seed seed
  done

(* --- Chunked-merge determinism ------------------------------------------- *)

(* The chunk size only reshapes work units; the merged entry list and
   the timing-free report must be byte-identical at every extreme —
   one restart per task, everything in one task, and the heuristic. *)
let test_explore_chunk_differential () =
  let allocs = [ Specsyn.Alloc.proc_asic () ] in
  let slif = Lazy.force Helpers.fuzzy_slif in
  let sweep ?chunk jobs =
    Specsyn.Report.explore_report ~timings:false
      (Specsyn.Explore.run ~jobs ?chunk ~algos:light_algos ~allocs slif)
  in
  let reference = sweep 1 in
  List.iter
    (fun (label, report) -> Alcotest.(check string) label reference report)
    [
      ("chunk 1, serial", sweep ~chunk:1 1);
      ("chunk 1, parallel", sweep ~chunk:1 jobs_par);
      ("chunk 64, parallel", sweep ~chunk:64 jobs_par);
      ("heuristic chunk, parallel", sweep jobs_par);
    ]

(* --- Pool domain cap and chunk helpers ------------------------------------ *)

let test_pool_domain_cap () =
  let cap = max 1 (Domain.recommended_domain_count ()) in
  Pool.with_pool ~jobs:8 (fun pool ->
      Alcotest.(check int) "jobs is as requested" 8 (Pool.jobs pool);
      Alcotest.(check int) "domains capped to hardware" (min 8 cap) (Pool.domains pool));
  Pool.with_pool ~jobs:8 ~oversubscribe:true (fun pool ->
      Alcotest.(check int) "oversubscribe bypasses the cap" 8 (Pool.domains pool))

let test_pool_chunks () =
  Alcotest.check_raises "chunk 0" (Invalid_argument "Pool.chunks: chunk must be >= 1")
    (fun () -> ignore (Pool.chunks ~chunk:0 5));
  Alcotest.(check (list (pair int int))) "empty range" [] (Pool.chunks ~chunk:4 0);
  Alcotest.(check (list (pair int int)))
    "exact split" [ (0, 3); (3, 3) ] (Pool.chunks ~chunk:3 6);
  Alcotest.(check (list (pair int int)))
    "ragged tail" [ (0, 4); (4, 4); (8, 2) ] (Pool.chunks ~chunk:4 10);
  (* Contiguous full cover, whatever the chunk size. *)
  List.iter
    (fun chunk ->
      let pieces = Pool.chunks ~chunk 37 in
      let covered = List.fold_left (fun acc (_, len) -> acc + len) 0 pieces in
      Alcotest.(check int) "covers every index" 37 covered;
      ignore
        (List.fold_left
           (fun expect (start, len) ->
             Alcotest.(check int) "contiguous" expect start;
             start + len)
           0 pieces))
    [ 1; 2; 5; 36; 37; 64 ];
  (* The heuristic depends only on (n, requested jobs) — never on the
     machine — and clamps to [1, 64]. *)
  Alcotest.(check int) "empty work" 1 (Pool.default_chunk ~jobs:4 0);
  Alcotest.(check int) "tiny work" 1 (Pool.default_chunk ~jobs:4 3);
  Alcotest.(check int) "four chunks per job" 5 (Pool.default_chunk ~jobs:2 40);
  Alcotest.(check int) "clamped to 64" 64 (Pool.default_chunk ~jobs:1 10_000);
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Pool.default_chunk: jobs must be >= 1") (fun () ->
      ignore (Pool.default_chunk ~jobs:0 10))

(* --- Domain-local slot lifecycle ------------------------------------------ *)

(* Init runs lazily on the domain that uses the slot (at most once per
   domain), every initialized slot is torn down exactly once by pool
   shutdown, and each [get] returns the calling domain's own value. *)
let test_pool_local_lifecycle () =
  let inits = Atomic.make 0 and teardowns = Atomic.make 0 in
  Pool.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      let slot =
        Pool.local pool
          ~teardown:(fun dom ->
            Atomic.incr teardowns;
            if dom <> (Domain.self () :> int) then
              Alcotest.fail "teardown ran on a foreign domain")
          (fun () ->
            Atomic.incr inits;
            (Domain.self () :> int))
      in
      let doms =
        Pool.map pool
          (fun _ ->
            let v = Pool.get slot in
            Alcotest.(check int) "slot belongs to this domain"
              (Domain.self () :> int)
              v;
            v)
          (List.init 64 Fun.id)
      in
      let distinct = List.length (List.sort_uniq compare doms) in
      Alcotest.(check int) "one init per participating domain" distinct
        (Atomic.get inits));
  Alcotest.(check int) "every initialized slot torn down" (Atomic.get inits)
    (Atomic.get teardowns)

let test_pool_local_init_raises () =
  (* A raising init stores nothing: it surfaces as the task's failure
     (lowest submission index wins, like any task exception) and the
     pool still shuts down cleanly. *)
  Pool.with_pool ~jobs:2 ~oversubscribe:true (fun pool ->
      let slot = Pool.local pool (fun () -> failwith "init boom") in
      Alcotest.check_raises "init failure surfaces" (Failure "init boom") (fun () ->
          ignore (Pool.map pool (fun _ -> ignore (Pool.get slot)) [ 1; 2; 3 ]));
      Alcotest.(check (list int)) "pool still works" [ 10 ]
        (Pool.map pool (fun x -> 10 * x) [ 1 ]))

let test_pool_local_teardown_raises () =
  (* A raising teardown must not wedge the joins; the first failure is
     re-raised from [shutdown] after every worker has exited. *)
  let torn = Atomic.make 0 in
  let pool = Pool.create ~jobs:3 ~oversubscribe:true () in
  let slot =
    Pool.local pool
      ~teardown:(fun _ ->
        Atomic.incr torn;
        failwith "teardown boom")
      (fun () -> (Domain.self () :> int))
  in
  let inits =
    List.length
      (List.sort_uniq compare (Pool.map pool (fun _ -> Pool.get slot) (List.init 32 Fun.id)))
  in
  Alcotest.check_raises "shutdown re-raises the teardown failure"
    (Failure "teardown boom") (fun () -> Pool.shutdown pool);
  Alcotest.(check int) "every slot's teardown still ran" inits (Atomic.get torn)

(* --- Partition-level comparison ------------------------------------------ *)

let check_same_partition label a b =
  let s = Slif.Partition.slif a in
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: node %d" label i)
        true
        (Slif.Partition.comp_of a i = Slif.Partition.comp_of b i))
    s.Slif.Types.nodes;
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: chan %d" label i)
        true
        (Slif.Partition.bus_of a i = Slif.Partition.bus_of b i))
    s.Slif.Types.chans

let fuzzy_problem =
  lazy
    (let s =
       Specsyn.Alloc.apply (Lazy.force Helpers.fuzzy_slif) (Specsyn.Alloc.proc_asic ())
     in
     Specsyn.Search.problem (Slif.Graph.make s))

(* --- Pareto differential ------------------------------------------------- *)

let test_pareto_differential () =
  let s =
    Specsyn.Alloc.apply (Lazy.force Helpers.fuzzy_slif) (Specsyn.Alloc.proc_asic ())
  in
  let graph = Slif.Graph.make s in
  let sweep jobs = Specsyn.Pareto.sweep ~jobs ~steps_per_point:150 graph in
  let a = sweep 1 and b = sweep jobs_par in
  Alcotest.(check int) "front size" (List.length a) (List.length b);
  List.iter2
    (fun (x : Specsyn.Pareto.point) (y : Specsyn.Pareto.point) ->
      Alcotest.(check (float 1e-9)) "worst exectime" x.worst_exectime_us y.worst_exectime_us;
      Alcotest.(check (float 1e-9)) "hw gates" x.hw_gates y.hw_gates;
      Alcotest.(check (float 1e-9)) "sw bytes" x.sw_bytes y.sw_bytes;
      Alcotest.(check (float 1e-9)) "weight" x.weight_time y.weight_time;
      check_same_partition "pareto point" x.part y.part)
    a b

(* --- Multi-restart searches ---------------------------------------------- *)

let test_annealing_restarts_differential () =
  let problem = Lazy.force fuzzy_problem in
  let params = { Specsyn.Annealing.default_params with steps = 150 } in
  let serial = Specsyn.Annealing.run ~restarts:4 ~params problem in
  let parallel =
    Pool.with_pool ~jobs:jobs_par (fun pool ->
        Specsyn.Annealing.run ~pool ~restarts:4 ~params problem)
  in
  Alcotest.(check (float 1e-9))
    "cost" serial.Specsyn.Search.cost parallel.Specsyn.Search.cost;
  Alcotest.(check int)
    "evaluated" serial.Specsyn.Search.evaluated parallel.Specsyn.Search.evaluated;
  check_same_partition "annealing best" serial.Specsyn.Search.part
    parallel.Specsyn.Search.part

let test_random_part_differential () =
  let problem = Lazy.force fuzzy_problem in
  let serial = Specsyn.Random_part.run ~seed:5 ~restarts:32 problem in
  let parallel =
    Pool.with_pool ~jobs:jobs_par (fun pool ->
        Specsyn.Random_part.run ~pool ~seed:5 ~restarts:32 problem)
  in
  Alcotest.(check (float 1e-9))
    "cost" serial.Specsyn.Search.cost parallel.Specsyn.Search.cost;
  Alcotest.(check int)
    "evaluated" serial.Specsyn.Search.evaluated parallel.Specsyn.Search.evaluated;
  check_same_partition "random best" serial.Specsyn.Search.part
    parallel.Specsyn.Search.part

(* --- Engine.copy isolation ----------------------------------------------- *)

let test_engine_copy_isolation () =
  let problem = Lazy.force fuzzy_problem in
  let part =
    Specsyn.Search.seed_partition (Slif.Graph.slif problem.Specsyn.Search.graph)
  in
  let original = Specsyn.Engine.of_problem problem part in
  let c0 = Specsyn.Engine.cost original in
  let dup = Specsyn.Engine.copy original in
  Alcotest.(check (float 1e-9)) "copy scores identically" c0 (Specsyn.Engine.cost dup);
  let rng = Prng.create 99 in
  for _ = 1 to 25 do
    match Specsyn.Engine.random_move dup rng with
    | None -> ()
    | Some m ->
        ignore (Specsyn.Engine.propose dup m);
        Specsyn.Engine.commit dup
  done;
  Alcotest.(check (float 1e-9)) "original untouched" c0 (Specsyn.Engine.cost original);
  match Specsyn.Engine.random_move dup rng with
  | None -> ()
  | Some m ->
      ignore (Specsyn.Engine.propose dup m);
      (match Specsyn.Engine.copy dup with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "copy during a pending transaction should raise");
      Specsyn.Engine.rollback dup

(* --- Engine.acquire bit-exactness ----------------------------------------- *)

(* The share-nothing refactor rides entirely on [Engine.acquire]
   rescoring bitwise like [Engine.create]: one replica re-acquired per
   restart must pick the same winner, at the same cost bits, as a fresh
   engine per restart. *)
let test_engine_acquire_bit_exact () =
  let problem = Lazy.force fuzzy_problem in
  let part = Specsyn.Search.seed_partition (Slif.Graph.slif problem.Specsyn.Search.graph) in
  let replica = Specsyn.Engine.of_problem problem part in
  (* Dirty the replica first, so acquire is rescoring from a genuinely
     stale state, not from the partition it was created on. *)
  let rng = Prng.create 3 in
  for _ = 1 to 10 do
    match Specsyn.Engine.random_move replica rng with
    | None -> ()
    | Some m ->
        ignore (Specsyn.Engine.propose replica m);
        Specsyn.Engine.commit replica
  done;
  List.iter
    (fun seed ->
      let fresh = Specsyn.Random_part.run ~seed ~restarts:16 problem in
      let reacquired =
        Specsyn.Random_part.run ~replica:(fun () -> replica) ~seed ~restarts:16 problem
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: same cost bits" seed)
        0
        (Int64.compare
           (Int64.bits_of_float fresh.Specsyn.Search.cost)
           (Int64.bits_of_float reacquired.Specsyn.Search.cost));
      check_same_partition
        (Printf.sprintf "seed %d: same winner" seed)
        fresh.Specsyn.Search.part reacquired.Specsyn.Search.part)
    [ 1; 2; 7 ]

(* --- Per-domain memo isolation -------------------------------------------- *)

(* Two domains hammer their own replicas (private estimate memo, private
   aggregates) concurrently; each must observe exactly the cost sequence
   a serial run of the same move stream observes.  Any cross-domain
   write to memo or aggregate state shows up as a diverging cost. *)
let test_memo_isolation_across_domains () =
  let problem = Lazy.force fuzzy_problem in
  let walk dom =
    (* A private seed partition per walk: the engine mutates it as it
       commits moves, so sharing one would break determinism on its
       own, independent of memo state. *)
    let part =
      Specsyn.Search.seed_partition (Slif.Graph.slif problem.Specsyn.Search.graph)
    in
    let eng = Specsyn.Engine.of_problem problem part in
    let rng = Prng.derive ~root:11 dom in
    let costs = ref [ Specsyn.Engine.cost eng ] in
    for _ = 1 to 60 do
      (match Specsyn.Engine.random_move eng rng with
      | None -> ()
      | Some m ->
          ignore (Specsyn.Engine.propose eng m);
          Specsyn.Engine.commit eng);
      costs := Specsyn.Engine.cost eng :: !costs
    done;
    List.rev !costs
  in
  let serial = List.map walk [ 0; 1 ] in
  let spawned = List.map (fun d -> Domain.spawn (fun () -> walk d)) [ 0; 1 ] in
  let concurrent = List.map Domain.join spawned in
  List.iteri
    (fun d (s, c) ->
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "domain %d cost walk" d)
        s c)
    (List.combine serial concurrent)

(* --- Observability under domain contention -------------------------------- *)

let test_obs_stress () =
  Obs.Registry.reset ();
  Obs.Registry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Registry.disable ();
      Obs.Registry.reset ())
  @@ fun () ->
  let domains = 8 and ops = 100_000 in
  let span_every = 100 in
  let body () =
    for i = 1 to ops do
      Obs.Counter.incr "stress.ops";
      if i mod span_every = 0 then
        Obs.Span.with_ "stress.tick" (fun () -> Obs.Counter.add "stress.bytes" 3)
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn body) in
  List.iter Domain.join spawned;
  let spans_per_domain = ops / span_every in
  Alcotest.(check int) "counter merges all domains" (domains * ops)
    (Obs.Counter.get "stress.ops");
  Alcotest.(check int) "add merges all domains"
    (domains * spans_per_domain * 3)
    (Obs.Counter.get "stress.bytes");
  (match Obs.Histogram.summary "span.stress.tick" with
  | None -> Alcotest.fail "span histogram missing"
  | Some s ->
      Alcotest.(check int) "span count" (domains * spans_per_domain) s.Obs.Histogram.count);
  let events = Obs.Trace.events () in
  Alcotest.(check int) "event count" (domains * spans_per_domain) (List.length events);
  let doms =
    List.sort_uniq compare (List.map (fun (e : Obs.Trace.event) -> e.dom) events)
  in
  Alcotest.(check int) "one lane per domain" domains (List.length doms)

let suite =
  [
    Alcotest.test_case "pool map preserves submission order" `Quick test_pool_map_order;
    Alcotest.test_case "pool of one job runs inline" `Quick test_pool_single_job;
    Alcotest.test_case "pool rejects jobs < 1" `Quick test_pool_rejects_bad_jobs;
    Alcotest.test_case "pool failure is deterministic" `Quick
      test_pool_exception_deterministic;
    Alcotest.test_case "map_seeded streams are jobs-invariant" `Quick
      test_pool_map_seeded_jobs_invariant;
    Alcotest.test_case "prng derive yields disjoint streams" `Quick
      test_prng_derive_streams;
    Alcotest.test_case "pool caps domains to the hardware" `Quick test_pool_domain_cap;
    Alcotest.test_case "chunk helpers slice and clamp" `Quick test_pool_chunks;
    Alcotest.test_case "local slots: init once, teardown once" `Quick
      test_pool_local_lifecycle;
    Alcotest.test_case "local slots: raising init surfaces as task failure" `Quick
      test_pool_local_init_raises;
    Alcotest.test_case "local slots: raising teardown re-raised from shutdown" `Quick
      test_pool_local_teardown_raises;
    Alcotest.test_case "explore -j4 == -j1 on bundled specs" `Quick test_explore_bundled;
    Alcotest.test_case "explore chunk size never shows in the report" `Quick
      test_explore_chunk_differential;
    Alcotest.test_case "explore -j4 == -j1 on fuzzed designs" `Quick test_explore_fuzzed;
    Alcotest.test_case "pareto front is jobs-invariant" `Quick test_pareto_differential;
    Alcotest.test_case "annealing restarts pool == serial" `Quick
      test_annealing_restarts_differential;
    Alcotest.test_case "random restarts pool == serial" `Quick
      test_random_part_differential;
    Alcotest.test_case "engine copy shares no state" `Quick test_engine_copy_isolation;
    Alcotest.test_case "engine acquire rescoring is bit-exact" `Quick
      test_engine_acquire_bit_exact;
    Alcotest.test_case "replica memos are domain-private" `Quick
      test_memo_isolation_across_domains;
    Alcotest.test_case "obs registry under 8-domain load" `Slow test_obs_stress;
  ]
