(* The query daemon: protocol, LRU, and an in-process server driven by
   real sockets — with differential checks against the shared [Ops]
   implementation the CLI prints from. *)

module Server = Slif_server.Server
module Client = Slif_server.Client
module Protocol = Slif_server.Protocol
module Lru = Slif_server.Lru
module Ops = Slif_server.Ops
module Json = Slif_obs.Json

(* --- LRU ------------------------------------------------------------------- *)

let test_lru_basics () =
  let l = Lru.create ~capacity:2 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find l "a");
  (* "a" is now most recent, so adding "c" evicts "b". *)
  Lru.add l "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find l "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find l "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find l "c");
  Alcotest.(check int) "size" 2 (Lru.size l);
  Alcotest.(check (list string)) "keys MRU-first" [ "c"; "a" ] (Lru.keys l)

let test_lru_replace () =
  let l = Lru.create ~capacity:2 in
  Lru.add l "a" 1;
  Lru.add l "a" 2;
  Alcotest.(check (option int)) "replaced" (Some 2) (Lru.find l "a");
  Alcotest.(check int) "no duplicate" 1 (Lru.size l)

let test_lru_bad_capacity () =
  match Lru.create ~capacity:0 with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

(* --- Protocol -------------------------------------------------------------- *)

let test_protocol_parse () =
  (match Protocol.request_of_line {|{"op":"estimate","spec":"vol","bounds":true}|} with
  | Ok (Protocol.Estimate { target = Protocol.Bundled "vol"; bounds = true; _ }) -> ()
  | _ -> Alcotest.fail "estimate request misparsed");
  (match Protocol.request_of_line {|{"op":"partition","source":"x","deadlines":["m=10"]}|} with
  | Ok (Protocol.Partition { target = Protocol.Source "x"; algo = "greedy"; deadlines = [ "m=10" ]; _ }) -> ()
  | _ -> Alcotest.fail "partition request misparsed");
  match Protocol.request_of_line {|{"op":"stats"}|} with
  | Ok Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats request misparsed"

let test_protocol_rejects () =
  let reject line =
    match Protocol.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  reject "not json";
  reject {|{"no_op":1}|};
  reject {|{"op":"frobnicate"}|};
  reject {|{"op":"load"}|};
  reject {|{"op":"load","spec":"a","source":"b"}|};
  reject {|{"op":"load","spec":17}|};
  reject {|{"op":"explore","spec":"a","jobs":"four"}|}

(* --- In-process daemon ----------------------------------------------------- *)

(* Run the server on a fresh loopback port in its own domain, hand the
   connected client to [f], then shut the daemon down and join it. *)
let with_server ?(config = fun c -> c) f =
  let port = Atomic.make None in
  let on_ready = function
    | Unix.ADDR_INET (_, p) -> Atomic.set port (Some p)
    | _ -> ()
  in
  let cfg = config (Server.default_config (Server.Tcp 0)) in
  let domain = Domain.spawn (fun () -> Server.run ~on_ready cfg) in
  let rec wait_port tries =
    match Atomic.get port with
    | Some p -> p
    | None ->
        if tries = 0 then Alcotest.fail "server never came up";
        Unix.sleepf 0.01;
        wait_port (tries - 1)
  in
  let p = wait_port 500 in
  let client = Client.connect_tcp p in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Client.request_raw client {|{"op":"shutdown"}|}) with _ -> ());
      Client.close client;
      Domain.join domain)
    (fun () -> f p client)

let request_exn client fields =
  match Client.request client (Json.Obj fields) with
  | Ok json -> json
  | Error msg -> Alcotest.failf "request failed: %s" msg

let output_exn client fields =
  match Protocol.output_field (request_exn client fields) with
  | Some s -> s
  | None -> Alcotest.fail "response carries no output"

let test_estimate_differential () =
  with_server (fun _port client ->
      List.iter
        (fun (spec : Specs.Registry.spec) ->
          let server_out =
            output_exn client
              [ ("op", Json.String "estimate"); ("spec", Json.String spec.spec_name);
                ("bounds", Json.Bool true) ]
          in
          Alcotest.(check string)
            (spec.spec_name ^ " estimate matches the CLI implementation")
            (Ops.estimate_output ~bounds:true (Ops.annotated spec.source))
            server_out)
        Specs.Registry.all)

let test_partition_and_explore_differential () =
  with_server (fun _port client ->
      let spec = Specs.Registry.all |> List.hd in
      let slif = Ops.annotated spec.Specs.Registry.source in
      let constraints = Ops.constraints_of_deadlines [] in
      let expected, _ = Ops.partition_output ~algo:Specsyn.Explore.Greedy ~constraints slif in
      let got =
        output_exn client
          [ ("op", Json.String "partition"); ("spec", Json.String spec.Specs.Registry.spec_name) ]
      in
      Alcotest.(check string) "partition matches" expected got;
      (* Explore responses use timings:false, so they are deterministic
         and jobs-independent — equal to the serial Ops run. *)
      let expected = Ops.explore_output ~jobs:1 ~constraints slif in
      let got =
        output_exn client
          [ ("op", Json.String "explore"); ("spec", Json.String spec.Specs.Registry.spec_name);
            ("jobs", Json.Int 2) ]
      in
      Alcotest.(check string) "explore matches (jobs-independent)" expected got)

let test_load_key_and_stats () =
  with_server (fun _port client ->
      let resp =
        request_exn client [ ("op", Json.String "load"); ("spec", Json.String "fuzzy") ]
      in
      let key =
        match Json.member "key" resp with
        | Some (Json.String k) -> k
        | _ -> Alcotest.fail "load response has no key"
      in
      (* The hot path: address the resident graph by content key. *)
      let by_key = output_exn client [ ("op", Json.String "estimate"); ("key", Json.String key) ] in
      let by_name =
        output_exn client [ ("op", Json.String "estimate"); ("spec", Json.String "fuzzy") ]
      in
      Alcotest.(check string) "key and name answers agree" by_name by_key;
      (match
         Client.request client (Json.Obj [ ("op", Json.String "estimate"); ("key", Json.String "feedfeed") ])
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown key accepted");
      let stats = request_exn client [ ("op", Json.String "stats") ] in
      (match Json.member "requests" stats with
      | Some (Json.Int n) -> Alcotest.(check bool) "requests counted" true (n >= 4)
      | _ -> Alcotest.fail "stats has no request count");
      match Option.bind (Json.member "lru" stats) (Json.member "keys") with
      | Some (Json.List keys) ->
          Alcotest.(check bool) "loaded key resident" true
            (List.mem (Json.String key) keys)
      | _ -> Alcotest.fail "stats has no lru keys")

(* Malformed-request soak: garbage of every shape earns an error response,
   and the daemon still answers real queries afterwards. *)
let test_malformed_soak () =
  with_server (fun _port client ->
      let garbage =
        [
          "not json at all";
          "{";
          "[]";
          "42";
          {|"string"|};
          {|{"op":"frobnicate"}|};
          {|{"op":"load"}|};
          {|{"op":"load","spec":"no-such-spec"}|};
          {|{"op":"load","spec":"fuzzy","profile":17}|};
          {|{"op":"partition","spec":"fuzzy","algo":"no-such-algo"}|};
          {|{"op":"partition","spec":"fuzzy","deadlines":["bad-deadline"]}|};
          {|{"op":"estimate","source":"entity broken"}|};
          String.make 4096 'x';
        ]
      in
      let prng = Slif_util.Prng.create 7 in
      for _ = 1 to 100 do
        let line = List.nth garbage (Slif_util.Prng.int prng (List.length garbage)) in
        match Protocol.response_of_line (Client.request_raw client line) with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "garbage accepted: %s" line
      done;
      let out = output_exn client [ ("op", Json.String "estimate"); ("spec", Json.String "vol") ] in
      Alcotest.(check bool) "daemon alive after soak" true (String.length out > 0))

(* Several clients from several domains at once: every answer identical
   to the one-shot implementation. *)
let test_concurrent_clients () =
  with_server (fun port _client ->
      let expected = Ops.estimate_output (Ops.annotated (Specs.Registry.all |> List.hd).source) in
      let spec_name = (Specs.Registry.all |> List.hd).Specs.Registry.spec_name in
      let worker () =
        let c = Client.connect_tcp port in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            List.init 5 (fun _ ->
                match
                  Client.request c
                    (Json.Obj [ ("op", Json.String "estimate"); ("spec", Json.String spec_name) ])
                with
                | Ok json -> Protocol.output_field json
                | Error msg -> Alcotest.failf "concurrent request failed: %s" msg))
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      List.iter
        (fun d ->
          List.iter
            (fun out -> Alcotest.(check (option string)) "concurrent answer" (Some expected) out)
            (Domain.join d))
        domains)

let test_pipelined_requests () =
  with_server (fun _port client ->
      (* Two requests in one write; responses come back in order. *)
      let first =
        Client.request_raw client
          "{\"op\":\"load\",\"spec\":\"vol\"}\n{\"op\":\"stats\"}"
      in
      (match Protocol.response_of_line first with
      | Ok json ->
          Alcotest.(check bool) "first is the load" true (Json.member "design" json <> None)
      | Error msg -> Alcotest.failf "pipelined load failed: %s" msg);
      match Client.request client (Json.Obj [ ("op", Json.String "stats") ]) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "stats after pipeline failed: %s" msg)

let test_max_requests_stops () =
  let port = Atomic.make None in
  let on_ready = function
    | Unix.ADDR_INET (_, p) -> Atomic.set port (Some p)
    | _ -> ()
  in
  let cfg = { (Server.default_config (Server.Tcp 0)) with Server.max_requests = Some 2 } in
  let domain = Domain.spawn (fun () -> Server.run ~on_ready cfg) in
  let rec wait_port tries =
    match Atomic.get port with
    | Some p -> p
    | None ->
        if tries = 0 then Alcotest.fail "server never came up";
        Unix.sleepf 0.01;
        wait_port (tries - 1)
  in
  let client = Client.connect_tcp (wait_port 500) in
  ignore (Client.request_raw client {|{"op":"stats"}|});
  ignore (Client.request_raw client {|{"op":"stats"}|});
  (* The daemon exits on its own: join must return. *)
  Domain.join domain;
  Client.close client

(* The real thing: spawn the built CLI binary as a daemon on a Unix
   socket and query it. *)
let cli = "../bin/slif_cli.exe"

let test_cli_daemon_smoke () =
  if not (Sys.file_exists cli) then ()
  else begin
    let sock = Filename.temp_file "slif_serve" ".sock" in
    Sys.remove sock;
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process cli
        [| cli; "serve"; "--socket"; sock; "--max-requests"; "2" |]
        Unix.stdin null null
    in
    Unix.close null;
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        if Sys.file_exists sock then Sys.remove sock)
      (fun () ->
        let rec wait tries =
          if Sys.file_exists sock then ()
          else if tries = 0 then Alcotest.fail "daemon socket never appeared"
          else begin
            Unix.sleepf 0.05;
            wait (tries - 1)
          end
        in
        wait 200;
        let client = Client.connect_unix sock in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            let out =
              output_exn client
                [ ("op", Json.String "estimate"); ("spec", Json.String "vol") ]
            in
            let spec = Option.get (Specs.Registry.find "vol") in
            Alcotest.(check string) "daemon answer equals one-shot CLI output"
              (Ops.estimate_output (Ops.annotated spec.Specs.Registry.source))
              out;
            ignore (Client.request_raw client {|{"op":"stats"}|})))
  end

let suite =
  [
    Alcotest.test_case "lru basics" `Quick test_lru_basics;
    Alcotest.test_case "lru replace" `Quick test_lru_replace;
    Alcotest.test_case "lru bad capacity" `Quick test_lru_bad_capacity;
    Alcotest.test_case "protocol parse" `Quick test_protocol_parse;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "estimate differential (all specs)" `Slow test_estimate_differential;
    Alcotest.test_case "partition/explore differential" `Slow test_partition_and_explore_differential;
    Alcotest.test_case "load, key addressing, stats" `Slow test_load_key_and_stats;
    Alcotest.test_case "malformed-request soak" `Slow test_malformed_soak;
    Alcotest.test_case "concurrent clients" `Slow test_concurrent_clients;
    Alcotest.test_case "pipelined requests" `Quick test_pipelined_requests;
    Alcotest.test_case "max-requests stops the daemon" `Quick test_max_requests_stops;
    Alcotest.test_case "CLI daemon smoke" `Slow test_cli_daemon_smoke;
  ]
