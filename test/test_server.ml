(* The query daemon: protocol, LRU, and an in-process server driven by
   real sockets — with differential checks against the shared [Ops]
   implementation the CLI prints from. *)

module Server = Slif_server.Server
module Client = Slif_server.Client
module Protocol = Slif_server.Protocol
module Lru = Slif_server.Lru
module Ops = Slif_server.Ops
module Json = Slif_obs.Json

(* --- LRU ------------------------------------------------------------------- *)

let test_lru_basics () =
  let l = Lru.create ~capacity:2 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find l "a");
  (* "a" is now most recent, so adding "c" evicts "b". *)
  Lru.add l "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find l "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find l "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find l "c");
  Alcotest.(check int) "size" 2 (Lru.size l);
  Alcotest.(check (list string)) "keys MRU-first" [ "c"; "a" ] (Lru.keys l)

let test_lru_replace () =
  let l = Lru.create ~capacity:2 in
  Lru.add l "a" 1;
  Lru.add l "a" 2;
  Alcotest.(check (option int)) "replaced" (Some 2) (Lru.find l "a");
  Alcotest.(check int) "no duplicate" 1 (Lru.size l)

let test_lru_bad_capacity () =
  match Lru.create ~capacity:0 with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

(* --- Protocol -------------------------------------------------------------- *)

let test_protocol_parse () =
  (match Protocol.request_of_line {|{"op":"estimate","spec":"vol","bounds":true}|} with
  | Ok (Protocol.Estimate { target = Protocol.Bundled "vol"; bounds = true; _ }) -> ()
  | _ -> Alcotest.fail "estimate request misparsed");
  (match Protocol.request_of_line {|{"op":"partition","source":"x","deadlines":["m=10"]}|} with
  | Ok (Protocol.Partition { target = Protocol.Source "x"; algo = "greedy"; deadlines = [ "m=10" ]; _ }) -> ()
  | _ -> Alcotest.fail "partition request misparsed");
  (match Protocol.request_of_line {|{"op":"stats"}|} with
  | Ok Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats request misparsed");
  (match Protocol.request_of_line {|{"op":"dump"}|} with
  | Ok Protocol.Dump -> ()
  | _ -> Alcotest.fail "dump request misparsed");
  (match Protocol.request_of_line {|{"op":"traces"}|} with
  | Ok (Protocol.Traces None) -> ()
  | _ -> Alcotest.fail "traces request misparsed");
  match Protocol.request_of_line {|{"op":"traces","id":"c3-r17"}|} with
  | Ok (Protocol.Traces (Some "c3-r17")) -> ()
  | _ -> Alcotest.fail "traces-by-id request misparsed"

let test_protocol_rejects () =
  let reject line =
    match Protocol.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  reject "not json";
  reject {|{"no_op":1}|};
  reject {|{"op":"frobnicate"}|};
  reject {|{"op":"load"}|};
  reject {|{"op":"load","spec":"a","source":"b"}|};
  reject {|{"op":"load","spec":17}|};
  reject {|{"op":"explore","spec":"a","jobs":"four"}|};
  reject {|{"op":"traces","id":17}|};
  (* Control ops stay out of batches — dump and traces included. *)
  List.iter
    (fun op ->
      match
        Protocol.request_of_line
          (Printf.sprintf {|{"op":"batch","items":[{"op":%S}]}|} op)
      with
      | Ok (Protocol.Batch [ Error msg ]) ->
          Alcotest.(check bool)
            (op ^ " rejected inside a batch")
            true
            (String.length msg > 0)
      | _ -> Alcotest.failf "batched %s not isolated as an item error" op)
    [ "dump"; "traces"; "stats"; "shutdown" ]

(* --- In-process daemon ----------------------------------------------------- *)

(* Run the server on a fresh loopback port in its own domain, hand the
   connected client to [f], then shut the daemon down and join it. *)
let with_server ?(config = fun c -> c) f =
  let port = Atomic.make None in
  let on_ready = function
    | Unix.ADDR_INET (_, p) -> Atomic.set port (Some p)
    | _ -> ()
  in
  let cfg = config (Server.default_config (Server.Tcp 0)) in
  let domain = Domain.spawn (fun () -> Server.run ~on_ready cfg) in
  let rec wait_port tries =
    match Atomic.get port with
    | Some p -> p
    | None ->
        if tries = 0 then Alcotest.fail "server never came up";
        Unix.sleepf 0.01;
        wait_port (tries - 1)
  in
  let p = wait_port 500 in
  let client = Client.connect_tcp p in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Client.request_raw client {|{"op":"shutdown"}|}) with _ -> ());
      Client.close client;
      Domain.join domain)
    (fun () -> f p client)

let request_exn client fields =
  match Client.request client (Json.Obj fields) with
  | Ok json -> json
  | Error msg -> Alcotest.failf "request failed: %s" msg

let output_exn client fields =
  match Protocol.output_field (request_exn client fields) with
  | Some s -> s
  | None -> Alcotest.fail "response carries no output"

let test_estimate_differential () =
  with_server (fun _port client ->
      List.iter
        (fun (spec : Specs.Registry.spec) ->
          let server_out =
            output_exn client
              [ ("op", Json.String "estimate"); ("spec", Json.String spec.spec_name);
                ("bounds", Json.Bool true) ]
          in
          Alcotest.(check string)
            (spec.spec_name ^ " estimate matches the CLI implementation")
            (Ops.estimate_output ~bounds:true (Ops.annotated spec.source))
            server_out)
        Specs.Registry.all)

let test_partition_and_explore_differential () =
  with_server (fun _port client ->
      let spec = Specs.Registry.all |> List.hd in
      let slif = Ops.annotated spec.Specs.Registry.source in
      let constraints = Ops.constraints_of_deadlines [] in
      let expected, _ = Ops.partition_output ~algo:Specsyn.Explore.Greedy ~constraints slif in
      let got =
        output_exn client
          [ ("op", Json.String "partition"); ("spec", Json.String spec.Specs.Registry.spec_name) ]
      in
      Alcotest.(check string) "partition matches" expected got;
      (* Explore responses use timings:false, so they are deterministic
         and jobs-independent — equal to the serial Ops run. *)
      let expected = Ops.explore_output ~jobs:1 ~constraints slif in
      let got =
        output_exn client
          [ ("op", Json.String "explore"); ("spec", Json.String spec.Specs.Registry.spec_name);
            ("jobs", Json.Int 2) ]
      in
      Alcotest.(check string) "explore matches (jobs-independent)" expected got)

let test_load_key_and_stats () =
  with_server (fun _port client ->
      let resp =
        request_exn client [ ("op", Json.String "load"); ("spec", Json.String "fuzzy") ]
      in
      let key =
        match Json.member "key" resp with
        | Some (Json.String k) -> k
        | _ -> Alcotest.fail "load response has no key"
      in
      (* The hot path: address the resident graph by content key. *)
      let by_key = output_exn client [ ("op", Json.String "estimate"); ("key", Json.String key) ] in
      let by_name =
        output_exn client [ ("op", Json.String "estimate"); ("spec", Json.String "fuzzy") ]
      in
      Alcotest.(check string) "key and name answers agree" by_name by_key;
      (match
         Client.request client (Json.Obj [ ("op", Json.String "estimate"); ("key", Json.String "feedfeed") ])
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown key accepted");
      let stats = request_exn client [ ("op", Json.String "stats") ] in
      (match Json.member "requests" stats with
      | Some (Json.Int n) -> Alcotest.(check bool) "requests counted" true (n >= 4)
      | _ -> Alcotest.fail "stats has no request count");
      match Option.bind (Json.member "lru" stats) (Json.member "keys") with
      | Some (Json.List keys) ->
          Alcotest.(check bool) "loaded key resident" true
            (List.mem (Json.String key) keys)
      | _ -> Alcotest.fail "stats has no lru keys")

(* Malformed-request soak: garbage of every shape earns an error response,
   and the daemon still answers real queries afterwards. *)
let test_malformed_soak () =
  with_server (fun _port client ->
      let garbage =
        [
          "not json at all";
          "{";
          "[]";
          "42";
          {|"string"|};
          {|{"op":"frobnicate"}|};
          {|{"op":"load"}|};
          {|{"op":"load","spec":"no-such-spec"}|};
          {|{"op":"load","spec":"fuzzy","profile":17}|};
          {|{"op":"partition","spec":"fuzzy","algo":"no-such-algo"}|};
          {|{"op":"partition","spec":"fuzzy","deadlines":["bad-deadline"]}|};
          {|{"op":"estimate","source":"entity broken"}|};
          String.make 4096 'x';
        ]
      in
      let prng = Slif_util.Prng.create 7 in
      for _ = 1 to 100 do
        let line = List.nth garbage (Slif_util.Prng.int prng (List.length garbage)) in
        match Protocol.response_of_line (Client.request_raw client line) with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "garbage accepted: %s" line
      done;
      let out = output_exn client [ ("op", Json.String "estimate"); ("spec", Json.String "vol") ] in
      Alcotest.(check bool) "daemon alive after soak" true (String.length out > 0))

(* Several clients from several domains at once: every answer identical
   to the one-shot implementation. *)
let test_concurrent_clients () =
  with_server (fun port _client ->
      let expected = Ops.estimate_output (Ops.annotated (Specs.Registry.all |> List.hd).source) in
      let spec_name = (Specs.Registry.all |> List.hd).Specs.Registry.spec_name in
      let worker () =
        let c = Client.connect_tcp port in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            List.init 5 (fun _ ->
                match
                  Client.request c
                    (Json.Obj [ ("op", Json.String "estimate"); ("spec", Json.String spec_name) ])
                with
                | Ok json -> Protocol.output_field json
                | Error msg -> Alcotest.failf "concurrent request failed: %s" msg))
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      List.iter
        (fun d ->
          List.iter
            (fun out -> Alcotest.(check (option string)) "concurrent answer" (Some expected) out)
            (Domain.join d))
        domains)

let test_pipelined_requests () =
  with_server (fun _port client ->
      (* Two requests in one write; responses come back in order. *)
      let first =
        Client.request_raw client
          "{\"op\":\"load\",\"spec\":\"vol\"}\n{\"op\":\"stats\"}"
      in
      (match Protocol.response_of_line first with
      | Ok json ->
          Alcotest.(check bool) "first is the load" true (Json.member "design" json <> None)
      | Error msg -> Alcotest.failf "pipelined load failed: %s" msg);
      match Client.request client (Json.Obj [ ("op", Json.String "stats") ]) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "stats after pipeline failed: %s" msg)

let test_max_requests_stops () =
  let port = Atomic.make None in
  let on_ready = function
    | Unix.ADDR_INET (_, p) -> Atomic.set port (Some p)
    | _ -> ()
  in
  let cfg = { (Server.default_config (Server.Tcp 0)) with Server.max_requests = Some 2 } in
  let domain = Domain.spawn (fun () -> Server.run ~on_ready cfg) in
  let rec wait_port tries =
    match Atomic.get port with
    | Some p -> p
    | None ->
        if tries = 0 then Alcotest.fail "server never came up";
        Unix.sleepf 0.01;
        wait_port (tries - 1)
  in
  let client = Client.connect_tcp (wait_port 500) in
  ignore (Client.request_raw client {|{"op":"stats"}|});
  ignore (Client.request_raw client {|{"op":"stats"}|});
  (* The daemon exits on its own: join must return. *)
  Domain.join domain;
  Client.close client

(* The real thing: spawn the built CLI binary as a daemon on a Unix
   socket and query it. *)
let cli = "../bin/slif_cli.exe"

let test_cli_daemon_smoke () =
  if not (Sys.file_exists cli) then ()
  else begin
    let sock = Filename.temp_file "slif_serve" ".sock" in
    Sys.remove sock;
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process cli
        [| cli; "serve"; "--socket"; sock; "--max-requests"; "2" |]
        Unix.stdin null null
    in
    Unix.close null;
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        if Sys.file_exists sock then Sys.remove sock)
      (fun () ->
        let rec wait tries =
          if Sys.file_exists sock then ()
          else if tries = 0 then Alcotest.fail "daemon socket never appeared"
          else begin
            Unix.sleepf 0.05;
            wait (tries - 1)
          end
        in
        wait 200;
        let client = Client.connect_unix sock in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            let out =
              output_exn client
                [ ("op", Json.String "estimate"); ("spec", Json.String "vol") ]
            in
            let spec = Option.get (Specs.Registry.find "vol") in
            Alcotest.(check string) "daemon answer equals one-shot CLI output"
              (Ops.estimate_output (Ops.annotated spec.Specs.Registry.source))
              out;
            ignore (Client.request_raw client {|{"op":"stats"}|})))
  end

(* --- LRU eviction order under touch / re-insert ----------------------------- *)

let test_lru_touch_reinsert_order () =
  let l = Lru.create ~capacity:3 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Lru.add l "c" 3;
  (* Touch a then b: c is now the oldest. *)
  ignore (Lru.find l "a");
  ignore (Lru.find l "b");
  Lru.add l "d" 4;
  Alcotest.(check (option int)) "c evicted" None (Lru.find l "c");
  Alcotest.(check (list string)) "order after touches" [ "d"; "b"; "a" ] (Lru.keys l);
  (* Re-inserting an existing key refreshes it without growing. *)
  Lru.add l "a" 10;
  Alcotest.(check (list string)) "re-insert is a touch" [ "a"; "d"; "b" ] (Lru.keys l);
  Lru.add l "e" 5;
  Alcotest.(check (option int)) "b evicted next" None (Lru.find l "b");
  Alcotest.(check (option int)) "re-inserted value kept" (Some 10) (Lru.find l "a");
  Alcotest.(check int) "size capped" 3 (Lru.size l)

let test_lru_capacity_one () =
  let l = Lru.create ~capacity:1 in
  Lru.add l "a" 1;
  Alcotest.(check (option int)) "sole entry" (Some 1) (Lru.find l "a");
  Lru.add l "b" 2;
  Alcotest.(check (option int)) "previous evicted" None (Lru.find l "a");
  Alcotest.(check (option int)) "newcomer resident" (Some 2) (Lru.find l "b");
  Lru.add l "b" 3;
  Alcotest.(check (option int)) "replace in place" (Some 3) (Lru.find l "b");
  Alcotest.(check int) "never grows" 1 (Lru.size l)

(* --- health / metrics ops ---------------------------------------------------- *)

let test_health_op () =
  with_server (fun _port client ->
      ignore (request_exn client [ ("op", Json.String "load"); ("spec", Json.String "vol") ]);
      let health = request_exn client [ ("op", Json.String "health") ] in
      (match Json.member "uptime_s" health with
      | Some (Json.Float s) -> Alcotest.(check bool) "uptime non-negative" true (s >= 0.0)
      | _ -> Alcotest.fail "health has no uptime_s");
      (match Json.member "inflight" health with
      | Some (Json.Int n) -> Alcotest.(check bool) "our connection counted" true (n >= 1)
      | _ -> Alcotest.fail "health has no inflight");
      (match Json.member "errors" health with
      | Some (Json.Int 0) -> ()
      | _ -> Alcotest.fail "clean daemon reports zero errors");
      (match Json.member "last_error" health with
      | Some Json.Null -> ()
      | _ -> Alcotest.fail "clean daemon has a null last_error");
      (match Option.bind (Json.member "lru" health) (Json.member "size") with
      | Some (Json.Int 1) -> ()
      | _ -> Alcotest.fail "loaded graph not reflected in lru size");
      (match Option.bind (Json.member "gc" health) (Json.member "heap_words") with
      | Some (Json.Int n) -> Alcotest.(check bool) "heap gauge positive" true (n > 0)
      | _ -> Alcotest.fail "health has no gc.heap_words");
      (match Option.bind (Json.member "gc" health) (Json.member "minor_collections") with
      | Some (Json.Int n) -> Alcotest.(check bool) "minor count sane" true (n >= 0)
      | _ -> Alcotest.fail "health has no gc.minor_collections");
      (match Option.bind (Json.member "pool" health) (Json.member "pools_created") with
      | Some (Json.Int n) -> Alcotest.(check bool) "pool totals present" true (n >= 0)
      | _ -> Alcotest.fail "health has no pool.pools_created");
      (* After a failing request, last_error carries the message. *)
      ignore (Client.request_raw client "not json");
      let health = request_exn client [ ("op", Json.String "health") ] in
      (match Json.member "errors" health with
      | Some (Json.Int n) -> Alcotest.(check bool) "error counted" true (n >= 1)
      | _ -> Alcotest.fail "health lost its error count");
      match Json.member "last_error" health with
      | Some (Json.String _) -> ()
      | _ -> Alcotest.fail "last_error not recorded")

(* A permissive line-level check of the exposition format: every line is
   a comment ([# HELP] / [# TYPE]) or [name{labels} value] with a legal
   metric name and a float-parsable value. *)
let check_prometheus_exposition text =
  let legal_name s =
    s <> ""
    && String.for_all
         (fun ch ->
           (ch >= 'a' && ch <= 'z')
           || (ch >= 'A' && ch <= 'Z')
           || (ch >= '0' && ch <= '9')
           || ch = '_' || ch = ':')
         s
    && not (s.[0] >= '0' && s.[0] <= '9')
  in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 1 && line.[0] = '#' then begin
        let is_help = String.length line > 7 && String.sub line 0 7 = "# HELP " in
        let is_type = String.length line > 7 && String.sub line 0 7 = "# TYPE " in
        if not (is_help || is_type) then Alcotest.failf "bad comment line: %s" line;
        if is_type then begin
          match String.split_on_char ' ' line with
          | [ "#"; "TYPE"; name; kind ] ->
              if not (legal_name name) then Alcotest.failf "bad metric name: %s" name;
              if not (List.mem kind [ "counter"; "gauge"; "summary" ]) then
                Alcotest.failf "bad metric type: %s" kind
          | _ -> Alcotest.failf "bad TYPE line: %s" line
        end
      end
      else begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "sample line without a value: %s" line
        | Some sp ->
            let name_part = String.sub line 0 sp in
            let value = String.sub line (sp + 1) (String.length line - sp - 1) in
            (match float_of_string_opt value with
            | Some _ -> ()
            | None -> Alcotest.failf "unparsable sample value %S in: %s" value line);
            let bare =
              match String.index_opt name_part '{' with
              | Some b ->
                  if name_part.[String.length name_part - 1] <> '}' then
                    Alcotest.failf "unterminated label set: %s" line;
                  String.sub name_part 0 b
              | None -> name_part
            in
            if not (legal_name bare) then Alcotest.failf "bad sample name: %s" line
      end)
    (String.split_on_char '\n' text)

let test_metrics_op () =
  with_server (fun _port client ->
      ignore (request_exn client [ ("op", Json.String "load"); ("spec", Json.String "vol") ]);
      ignore
        (request_exn client [ ("op", Json.String "estimate"); ("spec", Json.String "vol") ]);
      ignore (request_exn client [ ("op", Json.String "stats") ]);
      let text = output_exn client [ ("op", Json.String "metrics") ] in
      check_prometheus_exposition text;
      let contains needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        Alcotest.(check bool) (Printf.sprintf "exposes %s" needle) true (go 0)
      in
      contains "# TYPE slif_server_uptime_seconds gauge";
      contains "# TYPE slif_server_requests_total counter";
      contains "# TYPE slif_server_request_duration_microseconds summary";
      contains {|slif_server_requests_total{op="estimate"} 1|};
      (* Every op served so far has its three quantiles. *)
      List.iter
        (fun op ->
          List.iter
            (fun q ->
              contains
                (Printf.sprintf
                   {|slif_server_request_duration_microseconds{op="%s",quantile="%s"}|}
                   op q))
            [ "0.5"; "0.9"; "0.99" ])
        [ "load"; "estimate"; "stats" ];
      (* The parallel-stack families: GC pressure per domain, pool
         lifetime totals, and the select loop's idle accounting. *)
      contains "# TYPE slif_gc_minor_collections_total counter";
      contains "# TYPE slif_gc_promoted_words_total counter";
      contains "# TYPE slif_gc_heap_words gauge";
      contains {|slif_gc_minor_words_total{domain="|};
      contains "# TYPE slif_pool_pools_created_total counter";
      contains "# TYPE slif_pool_pools_live gauge";
      contains "# TYPE slif_pool_tasks_submitted_total counter";
      contains "# TYPE slif_pool_tasks_completed_total counter";
      contains "# TYPE slif_server_select_idle_seconds_total counter";
      contains "# TYPE slif_server_loop_iterations_total counter")

(* The stats op carries the same gc/pool blocks the CLI renders in
   [slif stats --watch]. *)
let test_stats_gc_pool () =
  with_server (fun _port client ->
      ignore (request_exn client [ ("op", Json.String "load"); ("spec", Json.String "vol") ]);
      let stats = request_exn client [ ("op", Json.String "stats") ] in
      (match Option.bind (Json.member "gc" stats) (Json.member "minor_words") with
      (* whole-number floats round-trip the wire as ints *)
      | Some (Json.Float w) -> Alcotest.(check bool) "allocation observed" true (w >= 0.0)
      | Some (Json.Int w) -> Alcotest.(check bool) "allocation observed" true (w >= 0)
      | _ -> Alcotest.fail "stats has no gc.minor_words");
      (match Option.bind (Json.member "gc" stats) (Json.member "per_domain") with
      | Some (Json.Obj (_ :: _)) -> ()
      | _ -> Alcotest.fail "stats gc.per_domain empty — daemon domain never sampled");
      match Json.member "pool" stats with
      | Some (Json.Obj fields) ->
          List.iter
            (fun k ->
              if not (List.mem_assoc k fields) then
                Alcotest.failf "stats pool block lacks %s" k)
            [ "pools_created"; "pools_live"; "tasks_submitted"; "tasks_completed" ]
      | _ -> Alcotest.fail "stats has no pool block")

(* --- trace ids: spans and event log agree ------------------------------------ *)

let test_trace_ids_shared () =
  let tmp = Filename.temp_file "slif_events" ".jsonl" in
  Slif_obs.Registry.reset ();
  Slif_obs.Registry.enable ();
  Slif_obs.Event.open_log tmp;
  Fun.protect
    ~finally:(fun () ->
      Slif_obs.Event.close_log ();
      Slif_obs.Registry.disable ();
      Slif_obs.Registry.reset ();
      Sys.remove tmp)
    (fun () ->
      with_server (fun _port client ->
          ignore
            (request_exn client [ ("op", Json.String "load"); ("spec", Json.String "vol") ]);
          ignore (request_exn client [ ("op", Json.String "stats") ]));
      Slif_obs.Event.close_log ();
      let ic = open_in tmp in
      let rec lines acc =
        match input_line ic with
        | line -> lines (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = lines [] in
      close_in ic;
      let log_traces =
        List.filter_map
          (fun line ->
            match Json.parse line with
            | Ok json when Json.member "event" json = Some (Json.String "server.request")
              -> (
                match Json.member "trace_id" json with
                | Some (Json.String id) -> Some id
                | _ -> Alcotest.failf "request event without trace_id: %s" line)
            | Ok _ -> None
            | Error msg -> Alcotest.failf "event log line is not JSON (%s): %s" msg line)
          lines
      in
      Alcotest.(check bool) "request events logged" true (List.length log_traces >= 2);
      let span_traces =
        List.filter_map
          (fun (e : Slif_obs.Trace.event) ->
            if String.length e.name >= 15 && String.sub e.name 0 15 = "server.request." then
              List.assoc_opt "trace_id" e.args
            else None)
          (Slif_obs.Trace.events ())
      in
      Alcotest.(check bool) "request spans carry trace ids" true
        (List.length span_traces >= 2);
      List.iter
        (fun id ->
          Alcotest.(check bool)
            (Printf.sprintf "span trace id %s appears in the event log" id)
            true (List.mem id log_traces))
        span_traces)

(* --- stats latency block ------------------------------------------------------ *)

let test_stats_latency () =
  with_server (fun _port client ->
      ignore
        (request_exn client [ ("op", Json.String "estimate"); ("spec", Json.String "vol") ]);
      let stats = request_exn client [ ("op", Json.String "stats") ] in
      match Option.bind (Json.member "latency_us" stats) (Json.member "estimate") with
      | Some q ->
          (match Json.member "count" q with
          | Some (Json.Int 1) -> ()
          | _ -> Alcotest.fail "estimate latency count wrong");
          (match (Json.member "p50" q, Json.member "p99" q, Json.member "max" q) with
          | Some (Json.Float p50), Some (Json.Float p99), Some (Json.Float mx) ->
              Alcotest.(check bool) "quantiles ordered" true (p50 <= p99 && p99 <= mx);
              Alcotest.(check bool) "latency positive" true (p50 > 0.0)
          | _ -> Alcotest.fail "latency quantile fields missing")
      | None -> Alcotest.fail "stats has no latency for estimate")

(* --- store-file targets ------------------------------------------------------- *)

(* A v2 store served by the daemon: the metadata-only load decodes
   nothing, an over-budget compute op earns a typed refusal, and with
   the budget lifted the same request decodes exactly once and matches
   the one-shot implementation. *)
let test_store_target () =
  let p = Slif_synth.Synth.default_params ~seed:11 ~nodes:50_000 Slif_synth.Synth.Mixed in
  let slif = Slif_synth.Synth.generate p in
  let path = Filename.temp_file "slif_served" ".slifstore" in
  Slif_obs.Registry.reset ();
  Slif_obs.Registry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Slif_obs.Registry.disable ();
      Slif_obs.Registry.reset ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Slif_store.Store.save_slif ~path ~version:Slif_store.Store.format_version_v2 slif;
      let decodes () = Slif_obs.Counter.get "store.lazy.full_decode" in
      with_server
        ~config:(fun c -> { c with Server.max_graph_mb = Some 1 })
        (fun _port client ->
          let before = decodes () in
          let resp =
            request_exn client [ ("op", Json.String "load"); ("store", Json.String path) ]
          in
          (match Json.member "nodes" resp with
          | Some (Json.Int n) -> Alcotest.(check int) "META node count" 50_000 n
          | _ -> Alcotest.fail "store load carries no node count");
          (match Json.member "lazy" resp with
          | Some (Json.Bool true) -> ()
          | _ -> Alcotest.fail "store load is not lazy");
          Alcotest.(check int) "metadata-only load decodes nothing" before (decodes ());
          (* The decoded graph is far over 1 MB: refused with a
             machine-readable kind, still without decoding anything. *)
          let raw =
            Client.request_raw client
              (Json.to_string
                 (Json.Obj [ ("op", Json.String "estimate"); ("store", Json.String path) ]))
          in
          (match Json.parse raw with
          | Ok json ->
              (match Json.member "ok" json with
              | Some (Json.Bool false) -> ()
              | _ -> Alcotest.fail "over-budget estimate accepted");
              (match Json.member "kind" json with
              | Some (Json.String "graph_too_large") -> ()
              | _ -> Alcotest.failf "refusal lacks typed kind: %s" raw)
          | Error msg -> Alcotest.failf "unparseable refusal: %s" msg);
          Alcotest.(check int) "refusal decodes nothing" before (decodes ()));
      with_server (fun _port client ->
          let before = decodes () in
          let estimate () =
            output_exn client [ ("op", Json.String "estimate"); ("store", Json.String path) ]
          in
          Alcotest.(check string) "store estimate matches the CLI implementation"
            (Ops.estimate_output ~bounds:false slif) (estimate ());
          Alcotest.(check int) "exactly one decode" (before + 1) (decodes ());
          (* The decoded graph is LRU-resident now; answering again must
             not touch the store. *)
          ignore (estimate ());
          Alcotest.(check int) "second answer from the LRU" (before + 1) (decodes ())))

(* Regenerating a store file on disk must be picked up by a running
   daemon: save_slif renames a fresh inode over the one the mmap pins,
   so the cached handle is revalidated per request and the stale
   decoded LRU entry dropped with it. *)
let test_store_refresh () =
  let first =
    Slif_synth.Synth.generate
      (Slif_synth.Synth.default_params ~seed:3 ~nodes:2_000 Slif_synth.Synth.Mixed)
  in
  let second =
    Slif_synth.Synth.generate
      (Slif_synth.Synth.default_params ~seed:4 ~nodes:2_000 Slif_synth.Synth.Fanout)
  in
  let out_first = Ops.estimate_output ~bounds:false first in
  let out_second = Ops.estimate_output ~bounds:false second in
  Alcotest.(check bool) "the two graphs estimate differently" false
    (String.equal out_first out_second);
  let path = Filename.temp_file "slif_refresh" ".slifstore" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Slif_store.Store.save_slif ~path ~version:Slif_store.Store.format_version_v2 first;
      with_server (fun _port client ->
          let estimate () =
            output_exn client [ ("op", Json.String "estimate"); ("store", Json.String path) ]
          in
          Alcotest.(check string) "serves the first graph" out_first (estimate ());
          Slif_store.Store.save_slif ~path ~version:Slif_store.Store.format_version_v2
            second;
          Alcotest.(check string) "serves the regenerated graph" out_second (estimate ())))

(* --- line cap ----------------------------------------------------------------- *)

let test_line_cap () =
  with_server
    ~config:(fun c -> { c with Server.max_line_bytes = 1024 })
    (fun port client ->
      (* A raw socket, so we can pour bytes in without a newline. *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let chunk = Bytes.make 4096 'x' in
          ignore (Unix.write fd chunk 0 (Bytes.length chunk));
          (* The daemon must answer with a protocol error, then close. *)
          let buf = Buffer.create 256 in
          let piece = Bytes.create 4096 in
          let eof = ref false in
          while not !eof do
            match Unix.read fd piece 0 (Bytes.length piece) with
            | 0 -> eof := true
            | n -> Buffer.add_subbytes buf piece 0 n
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                eof := true
          done;
          let reply = String.trim (Buffer.contents buf) in
          match Protocol.response_of_line reply with
          | Ok _ -> Alcotest.fail "oversized line accepted"
          | Error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "error names the cap: %s" msg)
                true
                (let needle = "byte cap" in
                 let nl = String.length needle and ml = String.length msg in
                 let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
                 go 0));
      (* The daemon keeps serving other connections. *)
      ignore (request_exn client [ ("op", Json.String "stats") ]))

(* SIGUSR1 makes the daemon dump its telemetry to stderr and keep
   serving.  Needs the real process: signals are process-wide. *)
let test_sigusr1_dump () =
  if not (Sys.file_exists cli) then ()
  else begin
    let sock = Filename.temp_file "slif_serve" ".sock" in
    Sys.remove sock;
    let err_path = Filename.temp_file "slif_serve" ".stderr" in
    let err_fd = Unix.openfile err_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process cli [| cli; "serve"; "--socket"; sock |] Unix.stdin null err_fd
    in
    Unix.close null;
    Unix.close err_fd;
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        if Sys.file_exists sock then Sys.remove sock;
        if Sys.file_exists err_path then Sys.remove err_path)
      (fun () ->
        let rec wait tries =
          if Sys.file_exists sock then ()
          else if tries = 0 then Alcotest.fail "daemon socket never appeared"
          else begin
            Unix.sleepf 0.05;
            wait (tries - 1)
          end
        in
        wait 200;
        let client = Client.connect_unix ~timeout_ms:10_000 sock in
        Fun.protect
          ~finally:(fun () ->
            (try ignore (Client.request_raw client {|{"op":"shutdown"}|}) with _ -> ());
            Client.close client)
          (fun () ->
            ignore (request_exn client [ ("op", Json.String "stats") ]);
            Unix.kill pid Sys.sigusr1;
            let contains_dump () =
              let ic = open_in err_path in
              let text = really_input_string ic (in_channel_length ic) in
              close_in ic;
              let needle = "slif serve telemetry" in
              let nl = String.length needle and tl = String.length text in
              let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
              go 0
            in
            let rec wait_dump tries =
              if contains_dump () then ()
              else if tries = 0 then Alcotest.fail "no telemetry dump after SIGUSR1"
              else begin
                Unix.sleepf 0.05;
                wait_dump (tries - 1)
              end
            in
            wait_dump 100;
            (* Still serving after the dump. *)
            ignore (request_exn client [ ("op", Json.String "health") ])))
  end

(* --- flight recorder over the wire ------------------------------------------- *)

(* Force every request slow ([--slow-ms 0]), run an estimate against a
   store file, and check the daemon retained its complete cross-domain
   span tree: accept (acceptor), queue wait + execution + store decode
   (worker), all sharing the root span id — reconstructed purely from
   the flight window's causality links. *)
let test_flight_retention () =
  Slif_obs.Flight.reset ();
  let p = Slif_synth.Synth.default_params ~seed:3 ~nodes:5_000 Slif_synth.Synth.Mixed in
  let slif = Slif_synth.Synth.generate p in
  let path = Filename.temp_file "slif_flight" ".slifstore" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Slif_store.Store.save_slif ~path ~version:Slif_store.Store.format_version_v2 slif;
      with_server
        ~config:(fun c -> { c with Server.slow_ms = Some 0.0 })
        (fun _port client ->
          ignore
            (output_exn client
               [ ("op", Json.String "estimate"); ("store", Json.String path) ]);
          let listing = request_exn client [ ("op", Json.String "traces") ] in
          let traces =
            match Json.member "traces" listing with
            | Some (Json.List l) -> l
            | _ -> Alcotest.fail "traces response has no list"
          in
          Alcotest.(check bool) "at least one trace retained" true (traces <> []);
          let sfield t name =
            match Json.member name t with Some (Json.String s) -> s | _ -> ""
          in
          let ifield t name =
            match Json.member name t with Some (Json.Int n) -> n | _ -> -1
          in
          let summary =
            match List.find_opt (fun t -> sfield t "op" = "estimate") traces with
            | Some t -> t
            | None -> Alcotest.fail "estimate trace not in the retained list"
          in
          Alcotest.(check string) "retained as slow" "slow" (sfield summary "reason");
          let tid = sfield summary "id" in
          let resp =
            request_exn client
              [ ("op", Json.String "traces"); ("id", Json.String tid) ]
          in
          let trace =
            match Json.member "trace" resp with
            | Some t -> t
            | None -> Alcotest.fail "traces-by-id carries no trace"
          in
          Alcotest.(check string) "tree echoes the id" tid (sfield trace "id");
          let spans =
            match Json.member "spans" trace with
            | Some (Json.List l) -> l
            | _ -> Alcotest.fail "trace has no spans"
          in
          (* The tree also carries instant events (e.g. the
             [server.request] log event) — the named lookups want the
             spans of the same name. *)
          let find name =
            match
              List.find_opt
                (fun s -> sfield s "name" = name && sfield s "kind" = "span")
                spans
            with
            | Some s -> s
            | None ->
                Alcotest.failf "span %s missing from the retained tree (got: %s)" name
                  (String.concat ", " (List.map (fun s -> sfield s "name") spans))
          in
          let root = find "server.request" in
          let accept = find "server.accept" in
          let queue = find "server.queue_wait" in
          let exec = find "server.request.estimate" in
          let decode = find "server.store.decode" in
          let root_id = ifield root "id" in
          Alcotest.(check bool) "root has a real id" true (root_id > 0);
          Alcotest.(check int) "root is the tree root" 0 (ifield root "parent");
          Alcotest.(check int) "accept under the root" root_id (ifield accept "parent");
          Alcotest.(check int) "queue wait under the root" root_id
            (ifield queue "parent");
          Alcotest.(check int) "execution under the root" root_id
            (ifield exec "parent");
          Alcotest.(check int) "store decode under the execution span"
            (ifield exec "id") (ifield decode "parent");
          (* The causality ids connect spans written by different
             domains: accept and root by the acceptor, queue wait and
             execution by the worker. *)
          Alcotest.(check bool) "tree crosses domains" true
            (ifield exec "dom" <> ifield accept "dom");
          (* An unknown id earns a typed error, not a hang or a crash. *)
          (match
             Client.request client
               (Json.Obj
                  [ ("op", Json.String "traces"); ("id", Json.String "c999-r999") ])
           with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "unknown trace id accepted");
          (* The stats block surfaces the recorder's health. *)
          let stats = request_exn client [ ("op", Json.String "stats") ] in
          match Json.member "flight" stats with
          | Some f ->
              Alcotest.(check bool) "flight records counted" true (ifield f "records" > 0);
              Alcotest.(check bool) "retention counted" true (ifield f "retained" >= 1)
          | None -> Alcotest.fail "stats has no flight block"))

(* The dump op: the whole flight window as Chrome trace_event JSON. *)
let test_flight_dump_op () =
  Slif_obs.Flight.reset ();
  with_server (fun _port client ->
      ignore
        (output_exn client [ ("op", Json.String "estimate"); ("spec", Json.String "fuzzy") ]);
      let out = output_exn client [ ("op", Json.String "dump") ] in
      match Json.parse out with
      | Error msg -> Alcotest.failf "dump output does not parse: %s" msg
      | Ok chrome -> (
          match Json.member "traceEvents" chrome with
          | Some (Json.List events) ->
              Alcotest.(check bool) "window has events" true (events <> []);
              let names =
                List.filter_map
                  (fun e ->
                    match Json.member "name" e with
                    | Some (Json.String s) -> Some s
                    | _ -> None)
                  events
              in
              Alcotest.(check bool) "request span exported" true
                (List.mem "server.request.estimate" names)
          | _ -> Alcotest.fail "dump output has no traceEvents"))

(* --- client timeouts ---------------------------------------------------------- *)

(* A listener whose backlog completes the TCP handshake but which never
   reads or replies: connect succeeds, the request stalls. *)
let test_client_timeout () =
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen srv 1;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "not an inet socket"
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close srv with Unix.Unix_error _ -> ())
    (fun () ->
      let c = Client.connect_tcp ~timeout_ms:200 port in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          match Client.request_raw c {|{"op":"stats"}|} with
          | _ -> Alcotest.fail "stalled socket produced an answer"
          | exception Client.Timeout ->
              let dt = Unix.gettimeofday () -. t0 in
              Alcotest.(check bool) "deadline honored" true (dt >= 0.1 && dt < 5.0)))

let test_client_timeout_rejects_bad_value () =
  match Client.connect_tcp ~timeout_ms:0 1 with
  | _ -> Alcotest.fail "timeout_ms 0 accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "lru basics" `Quick test_lru_basics;
    Alcotest.test_case "lru replace" `Quick test_lru_replace;
    Alcotest.test_case "lru bad capacity" `Quick test_lru_bad_capacity;
    Alcotest.test_case "protocol parse" `Quick test_protocol_parse;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "estimate differential (all specs)" `Slow test_estimate_differential;
    Alcotest.test_case "partition/explore differential" `Slow test_partition_and_explore_differential;
    Alcotest.test_case "load, key addressing, stats" `Slow test_load_key_and_stats;
    Alcotest.test_case "malformed-request soak" `Slow test_malformed_soak;
    Alcotest.test_case "concurrent clients" `Slow test_concurrent_clients;
    Alcotest.test_case "pipelined requests" `Quick test_pipelined_requests;
    Alcotest.test_case "max-requests stops the daemon" `Quick test_max_requests_stops;
    Alcotest.test_case "CLI daemon smoke" `Slow test_cli_daemon_smoke;
    Alcotest.test_case "lru touch and re-insert order" `Quick test_lru_touch_reinsert_order;
    Alcotest.test_case "lru capacity one" `Quick test_lru_capacity_one;
    Alcotest.test_case "health op" `Slow test_health_op;
    Alcotest.test_case "metrics op (Prometheus exposition)" `Slow test_metrics_op;
    Alcotest.test_case "stats op carries gc and pool blocks" `Slow test_stats_gc_pool;
    Alcotest.test_case "trace ids shared by spans and event log" `Slow
      test_trace_ids_shared;
    Alcotest.test_case "stats reports latency quantiles" `Slow test_stats_latency;
    Alcotest.test_case "store target: lazy load, budget, decode-once" `Slow
      test_store_target;
    Alcotest.test_case "store target: regenerated file served fresh" `Quick
      test_store_refresh;
    Alcotest.test_case "line cap earns a protocol error" `Quick test_line_cap;
    Alcotest.test_case "SIGUSR1 dumps telemetry" `Slow test_sigusr1_dump;
    Alcotest.test_case "tail retention keeps the cross-domain tree" `Slow
      test_flight_retention;
    Alcotest.test_case "dump op exports the flight window" `Slow test_flight_dump_op;
    Alcotest.test_case "client timeout on a stalled socket" `Quick test_client_timeout;
    Alcotest.test_case "client rejects non-positive timeout" `Quick
      test_client_timeout_rejects_bad_value;
  ]
