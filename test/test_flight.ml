(* The flight recorder: always-on per-domain rings, process-unique span
   ids, cross-domain causality and the Chrome export.

   The recorder is process-global state shared with every other suite
   (spans recorded by tests running before us are still in the rings),
   so each test starts from [Flight.reset] and — where it counts
   records — filters by a name prefix of its own. *)

module Obs = Slif_obs
module Flight = Obs.Flight

let with_fresh f =
  Flight.reset ();
  Fun.protect ~finally:Flight.reset f

(* --- Ring basics ------------------------------------------------------------ *)

let test_record_and_snapshot () =
  with_fresh @@ fun () ->
  let id = Flight.next_id () in
  Flight.record_span ~trace:"t-1" ~id ~parent:0 ~name:"flight.test.a" ~t0_ns:100
    ~dur_ns:50 ();
  Flight.record_event "flight.test.ev";
  let recs = Flight.snapshot () in
  let mine =
    List.filter
      (fun (r : Flight.record) ->
        String.length r.fr_name >= 11 && String.sub r.fr_name 0 11 = "flight.test")
      recs
  in
  Alcotest.(check int) "two records" 2 (List.length mine);
  let span = List.find (fun (r : Flight.record) -> r.Flight.fr_kind = Flight.Span) mine in
  let ev = List.find (fun (r : Flight.record) -> r.Flight.fr_kind = Flight.Event) mine in
  Alcotest.(check string) "span name" "flight.test.a" span.Flight.fr_name;
  Alcotest.(check int) "span id" id span.Flight.fr_id;
  Alcotest.(check int) "span t0" 100 span.Flight.fr_ts_ns;
  Alcotest.(check int) "span dur" 50 span.Flight.fr_dur_ns;
  Alcotest.(check string) "span trace" "t-1" span.Flight.fr_trace;
  Alcotest.(check int) "event id is 0" 0 ev.Flight.fr_id;
  Alcotest.(check string) "event has no ambient trace" "" ev.Flight.fr_trace

let test_ring_wrap_drops () =
  with_fresh @@ fun () ->
  let cap = Flight.default_capacity in
  for i = 1 to cap + 100 do
    Flight.record_span ~id:i ~parent:0 ~name:"flight.wrap" ~t0_ns:i ~dur_ns:1 ()
  done;
  let stat =
    List.find
      (fun (s : Flight.ring_stat) -> s.Flight.rs_records > 0)
      (Flight.ring_stats ())
  in
  Alcotest.(check int) "all writes counted" (cap + 100) stat.Flight.rs_records;
  Alcotest.(check int) "overflow dropped" 100 stat.Flight.rs_dropped;
  Alcotest.(check int) "window holds one capacity" cap stat.Flight.rs_occupancy;
  (* The survivors are the newest [cap] records. *)
  let recs = Flight.snapshot () in
  Alcotest.(check int) "snapshot = occupancy" cap (List.length recs);
  let oldest = List.hd recs in
  Alcotest.(check int) "oldest surviving write" 101 oldest.Flight.fr_ts_ns

let test_disable_enable () =
  with_fresh @@ fun () ->
  Flight.disable ();
  Fun.protect ~finally:Flight.enable @@ fun () ->
  Flight.record_span ~id:(Flight.next_id ()) ~parent:0 ~name:"flight.off" ~t0_ns:1
    ~dur_ns:1 ();
  Flight.record_event "flight.off.ev";
  Alcotest.(check int) "nothing recorded while off" 0 (Flight.records_total ());
  Flight.enable ();
  Flight.record_event "flight.on.ev";
  Alcotest.(check int) "recording resumes" 1 (Flight.records_total ())

let test_set_capacity () =
  with_fresh @@ fun () ->
  Flight.set_capacity 8;
  Fun.protect ~finally:(fun () -> Flight.set_capacity Flight.default_capacity)
  @@ fun () ->
  for i = 1 to 20 do
    Flight.record_span ~id:i ~parent:0 ~name:"flight.cap" ~t0_ns:i ~dur_ns:1 ()
  done;
  Alcotest.(check int) "window bounded by the new capacity" 8
    (List.length (Flight.snapshot ()))

(* --- Span ids across domains ------------------------------------------------ *)

let test_next_id_unique_across_domains () =
  let per_domain = 1000 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Array.init per_domain (fun _ -> Flight.next_id ())))
  in
  let ids = List.concat_map (fun d -> Array.to_list (Domain.join d)) doms in
  let distinct = List.sort_uniq compare ids in
  Alcotest.(check int) "no id minted twice" (4 * per_domain) (List.length distinct)

(* --- Span.with_ integration ------------------------------------------------- *)

let test_span_records_always_on () =
  with_fresh @@ fun () ->
  (* The registry is off — spans must still land in the flight ring. *)
  Alcotest.(check bool) "registry off" false (Obs.Registry.on ());
  Obs.Span.with_ "flight.span.outer" (fun () ->
      Obs.Span.with_ "flight.span.inner" (fun () -> ()));
  let recs = Flight.snapshot () in
  let find name = List.find (fun (r : Flight.record) -> r.Flight.fr_name = name) recs in
  let outer = find "flight.span.outer" and inner = find "flight.span.inner" in
  Alcotest.(check bool) "ids minted" true (outer.Flight.fr_id > 0 && inner.Flight.fr_id > 0);
  Alcotest.(check int) "inner parented under outer" outer.Flight.fr_id
    inner.Flight.fr_parent;
  Alcotest.(check int) "outer is a root" 0 outer.Flight.fr_parent

let test_by_trace_and_parent_chain () =
  with_fresh @@ fun () ->
  Obs.Registry.with_trace "flight-req" (fun () ->
      Obs.Span.with_ "flight.req.work" (fun () ->
          Obs.Event.emit "flight.req.mark";
          Obs.Span.with_ "flight.req.step" (fun () -> ())));
  Obs.Span.with_ "flight.other" (fun () -> ());
  let recs = Flight.by_trace "flight-req" in
  Alcotest.(check int) "only the traced records" 3 (List.length recs);
  let find name = List.find (fun (r : Flight.record) -> r.Flight.fr_name = name) recs in
  let work = find "flight.req.work" in
  let step = find "flight.req.step" in
  let mark = find "flight.req.mark" in
  Alcotest.(check int) "step under work" work.Flight.fr_id step.Flight.fr_parent;
  Alcotest.(check int) "event under work" work.Flight.fr_id mark.Flight.fr_parent;
  Alcotest.(check string) "event carries the trace" "flight-req" mark.Flight.fr_trace

(* --- Cross-domain causality through the pool -------------------------------- *)

let test_pool_carries_causality () =
  with_fresh @@ fun () ->
  Slif_util.Pool.with_pool ~jobs:4 ~oversubscribe:true @@ fun pool ->
  (* Each task waits until a second task has started before finishing.
     The submitting domain runs one task at a time, so two concurrent
     tasks prove a second domain executed one — the cross-domain hop is
     guaranteed, not a scheduling accident. *)
  let started = Atomic.make 0 in
  Obs.Registry.with_trace "flight-pool" (fun () ->
      Obs.Span.with_ "flight.pool.submit" (fun () ->
          ignore
            (Slif_util.Pool.map pool
               (fun i ->
                 Obs.Span.with_ "flight.pool.task" (fun () ->
                     Atomic.incr started;
                     let deadline =
                       Int64.add (Obs.Clock.now_ns ()) 2_000_000_000L
                     in
                     while
                       Atomic.get started < 2 && Obs.Clock.now_ns () < deadline
                     do
                       Domain.cpu_relax ()
                     done;
                     i * 2))
               [ 1; 2; 3; 4; 5; 6; 7; 8 ])));
  let recs = Flight.by_trace "flight-pool" in
  let submit =
    List.find (fun (r : Flight.record) -> r.Flight.fr_name = "flight.pool.submit") recs
  in
  let tasks =
    List.filter (fun (r : Flight.record) -> r.Flight.fr_name = "flight.pool.task") recs
  in
  let waits =
    List.filter (fun (r : Flight.record) -> r.Flight.fr_name = "pool.queue_wait") recs
  in
  Alcotest.(check int) "every task recorded" 8 (List.length tasks);
  Alcotest.(check int) "every hop recorded a queue wait" 8 (List.length waits);
  List.iter
    (fun (r : Flight.record) ->
      Alcotest.(check int) "task parented under the submit span" submit.Flight.fr_id
        r.Flight.fr_parent;
      Alcotest.(check string) "task carries the submitter's trace" "flight-pool"
        r.Flight.fr_trace)
    tasks;
  List.iter
    (fun (r : Flight.record) ->
      Alcotest.(check int) "queue wait parented under the submit span"
        submit.Flight.fr_id r.Flight.fr_parent)
    waits;
  (* The whole point: the tree crosses domains. *)
  let domains =
    List.sort_uniq compare (List.map (fun (r : Flight.record) -> r.Flight.fr_dom) recs)
  in
  Alcotest.(check bool) "spans span more than one domain" true (List.length domains > 1)

(* --- Chrome export ----------------------------------------------------------- *)

let test_chrome_export () =
  with_fresh @@ fun () ->
  Obs.Registry.with_trace "flight-chrome" (fun () ->
      Obs.Span.with_ "flight.chrome.span" (fun () -> Obs.Event.emit "flight.chrome.ev"));
  let json = Flight.to_chrome () in
  (* Round-trips through the parser. *)
  let reparsed =
    match Obs.Json.parse (Obs.Json.to_string json) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "chrome export does not parse: %s" msg
  in
  let events =
    match Obs.Json.member "traceEvents" reparsed with
    | Some (Obs.Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents list"
  in
  let phase_of e =
    match Obs.Json.member "ph" e with Some (Obs.Json.String s) -> s | _ -> "?"
  in
  let name_of e =
    match Obs.Json.member "name" e with Some (Obs.Json.String s) -> s | _ -> ""
  in
  let span = List.find (fun e -> name_of e = "flight.chrome.span") events in
  let ev = List.find (fun e -> name_of e = "flight.chrome.ev") events in
  Alcotest.(check string) "span is a complete event" "X" (phase_of span);
  Alcotest.(check string) "event is an instant" "i" (phase_of ev);
  (match Obs.Json.member "ts" (List.hd events) with
  | Some (Obs.Json.Float ts) ->
      Alcotest.(check bool) "timestamps rebased to the window" true (ts >= 0.0)
  | Some (Obs.Json.Int ts) -> Alcotest.(check bool) "timestamps rebased" true (ts >= 0)
  | _ -> Alcotest.fail "first trace event has no ts")

let suite =
  [
    Alcotest.test_case "record and snapshot" `Quick test_record_and_snapshot;
    Alcotest.test_case "ring wrap counts drops" `Quick test_ring_wrap_drops;
    Alcotest.test_case "disable stops the pen" `Quick test_disable_enable;
    Alcotest.test_case "set_capacity resizes the window" `Quick test_set_capacity;
    Alcotest.test_case "ids unique across domains" `Quick test_next_id_unique_across_domains;
    Alcotest.test_case "spans record with the registry off" `Quick
      test_span_records_always_on;
    Alcotest.test_case "by_trace and the parent chain" `Quick test_by_trace_and_parent_chain;
    Alcotest.test_case "pool hops keep causality" `Quick test_pool_carries_causality;
    Alcotest.test_case "chrome export" `Quick test_chrome_export;
  ]
