let () =
  Alcotest.run "slif"
    [
      ("bitmath", Test_bitmath.suite);
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("sem", Test_sem.suite);
      ("pretty", Test_pretty.suite);
      ("flow", Test_flow.suite);
      ("tech", Test_tech.suite);
      ("build", Test_build.suite);
      ("graph", Test_graph.suite);
      ("partition", Test_partition.suite);
      ("estimate", Test_estimate.suite);
      ("text", Test_text.suite);
      ("cdfg", Test_cdfg.suite);
      ("specsyn", Test_specsyn.suite);
      ("engine", Test_engine.suite);
      ("properties", Test_props.suite);
      ("interp", Test_interp.suite);
      ("decision", Test_decision.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("hwshare", Test_hwshare.suite);
      ("pareto", Test_pareto.suite);
      ("speccharts", Test_spc.suite);
      ("store", Test_store.suite);
      ("synth", Test_synth.suite);
      ("flight", Test_flight.suite);
      ("server", Test_server.suite);
      ("daemon-mt", Test_daemon_mt.suite);
      ("cli", Test_cli.suite);
      ("parallel", Test_parallel.suite);
      ("profiler", Test_profiler.suite);
      ("fuzz", Test_fuzz.suite);
      ("integration", Test_integration.suite);
    ]
