(* Parallelism-profiler layer.

   Covers the probes individually — Lockprof wait/hold under real
   domain contention, Gcprof delta arithmetic, pool stats edge cases —
   and the composed guarantees: the attribution categories cover the
   measured wall (>= 90%), and arming the full profiling stack never
   changes what exploration computes. *)

module Obs = Slif_obs
module Pool = Slif_util.Pool

let with_profiling f =
  Obs.Registry.reset ();
  Obs.Attribution.reset ();
  Obs.Lockprof.reset ();
  Obs.Gcprof.reset ();
  Obs.Registry.enable ();
  Obs.Attribution.enable ();
  Obs.Lockprof.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Lockprof.set_enabled false;
      Obs.Attribution.disable ();
      Obs.Registry.disable ();
      Obs.Registry.reset ();
      Obs.Attribution.reset ();
      Obs.Lockprof.reset ();
      Obs.Gcprof.reset ())
    f

(* --- Pool stats ---------------------------------------------------------- *)

let test_pool_stats_lifecycle () =
  let g0 = Pool.global_stats () in
  (* Oversubscribed on purpose: the lifecycle assertions count worker
     domains, which the hardware cap would reduce on a small machine. *)
  let pool = Pool.create ~jobs:4 ~oversubscribe:true () in
  let s = Pool.stats pool in
  Alcotest.(check int) "jobs" 4 s.Pool.st_jobs;
  Alcotest.(check int) "workers" 3 s.Pool.st_worker_domains;
  Alcotest.(check int) "fresh: queued" 0 s.Pool.st_queued;
  Alcotest.(check int) "fresh: submitted" 0 s.Pool.st_submitted;
  Alcotest.(check int) "fresh: completed" 0 s.Pool.st_completed;
  (* More domains than tasks: the extra workers must stay parked without
     disturbing the count or the order. *)
  Alcotest.(check (list int)) "jobs > tasks" [ 10; 20 ]
    (Pool.map pool (fun x -> 10 * x) [ 1; 2 ]);
  (* The empty task list settles immediately. *)
  Alcotest.(check (list int)) "empty task list" [] (Pool.map pool Fun.id []);
  let s = Pool.stats pool in
  Alcotest.(check int) "after: queued" 0 s.Pool.st_queued;
  Alcotest.(check int) "after: submitted" 2 s.Pool.st_submitted;
  Alcotest.(check int) "after: completed" 2 s.Pool.st_completed;
  Pool.shutdown pool;
  Pool.shutdown pool;
  let s = Pool.stats pool in
  Alcotest.(check int) "shutdown: workers" 0 s.Pool.st_worker_domains;
  let g1 = Pool.global_stats () in
  Alcotest.(check int) "global: pools +1" (g0.Pool.g_pools_created + 1)
    g1.Pool.g_pools_created;
  Alcotest.(check int) "global: live unchanged (idempotent shutdown)"
    g0.Pool.g_pools_live g1.Pool.g_pools_live;
  Alcotest.(check int) "global: submitted +2" (g0.Pool.g_tasks_submitted + 2)
    g1.Pool.g_tasks_submitted;
  Alcotest.(check int) "global: completed +2" (g0.Pool.g_tasks_completed + 2)
    g1.Pool.g_tasks_completed

let test_pool_stats_serial () =
  (* The jobs=1 inline path must feed the same counters. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      ignore (Pool.map pool Fun.id [ 1; 2; 3 ]);
      let s = Pool.stats pool in
      Alcotest.(check int) "serial: submitted" 3 s.Pool.st_submitted;
      Alcotest.(check int) "serial: completed" 3 s.Pool.st_completed;
      Alcotest.(check int) "serial: workers" 0 s.Pool.st_worker_domains)

(* --- Lockprof under contention ------------------------------------------- *)

let test_lockprof_contention () =
  with_profiling @@ fun () ->
  let lk = Obs.Lockprof.create "test.contended" in
  let domains = 8 and iters = 500 in
  (* Whether two domains actually collide on the mutex is up to the
     scheduler; hammer until they do (the count invariants must hold on
     every attempt regardless). *)
  let hammer () =
    Obs.Lockprof.reset ();
    let counter = ref 0 in
    let sink = ref 0 in
    (* Spawning a domain takes far longer than the loop body runs, so
       without a start barrier the domains would hammer one after
       another and never collide. *)
    let ready = Atomic.make 0 in
    let body () =
      Atomic.incr ready;
      while Atomic.get ready < domains do
        Domain.cpu_relax ()
      done;
      for _ = 1 to iters do
        Obs.Lockprof.with_lock lk (fun () ->
            incr counter;
            for i = 1 to 50 do
              sink := !sink + i
            done)
      done
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn body) in
    body ();
    List.iter Domain.join spawned;
    Alcotest.(check int) "mutex still excludes" (domains * iters) !counter;
    let s = Obs.Lockprof.stats lk in
    Alcotest.(check int) "every acquisition counted" (domains * iters)
      s.Obs.Lockprof.acquisitions;
    Alcotest.(check int) "wait recorded per acquisition" (domains * iters)
      s.Obs.Lockprof.wait_us.Obs.Histogram.count;
    Alcotest.(check int) "hold recorded per acquisition" (domains * iters)
      s.Obs.Lockprof.hold_us.Obs.Histogram.count;
    Alcotest.(check bool) "contended <= acquisitions" true
      (s.Obs.Lockprof.contended <= s.Obs.Lockprof.acquisitions);
    if s.Obs.Lockprof.contended > 0 then
      Alcotest.(check bool) "contended waits took time" true
        (s.Obs.Lockprof.wait_us.Obs.Histogram.sum > 0.0);
    s
  in
  let rec attempt n =
    let s = hammer () in
    if s.Obs.Lockprof.contended > 0 then s
    else if n > 1 then attempt (n - 1)
    else s
  in
  let s = attempt 5 in
  Alcotest.(check bool) "contention observed" true (s.Obs.Lockprof.contended > 0);
  (* The named lock shows up in the exporter view. *)
  Alcotest.(check bool) "listed in all ()" true
    (List.exists (fun (st : Obs.Lockprof.stat) -> st.s_name = "test.contended")
       (Obs.Lockprof.all ()))

let test_lockprof_wait_excludes_park () =
  (* A condition park must not count as holding the lock: the waiter
     parks ~100ms, but both of its hold segments are microseconds. *)
  with_profiling @@ fun () ->
  let lk = Obs.Lockprof.create "test.parked" in
  let ready = ref false in
  let cond = Condition.create () in
  let waiter =
    Domain.spawn (fun () ->
        Obs.Lockprof.lock lk;
        while not !ready do
          Obs.Lockprof.wait lk cond
        done;
        Obs.Lockprof.unlock lk)
  in
  Unix.sleepf 0.1;
  Obs.Lockprof.lock lk;
  ready := true;
  Condition.broadcast cond;
  Obs.Lockprof.unlock lk;
  Domain.join waiter;
  let s = Obs.Lockprof.stats lk in
  Alcotest.(check bool) "hold segments closed around the park" true
    (s.Obs.Lockprof.hold_us.Obs.Histogram.count >= 3);
  Alcotest.(check bool)
    (Printf.sprintf "no hold segment ate the 100ms park (max %.0f us)"
       s.Obs.Lockprof.hold_us.Obs.Histogram.max)
    true
    (s.Obs.Lockprof.hold_us.Obs.Histogram.max < 50_000.0)

(* --- Gcprof deltas -------------------------------------------------------- *)

let test_gcprof_delta () =
  Obs.Gcprof.reset ();
  Obs.Gcprof.sample ();
  (* pin the baseline *)
  Obs.Gcprof.reset ();
  (* ~1M words of short-lived small blocks: all minor-heap allocation. *)
  for _ = 1 to 10_000 do
    ignore (Sys.opaque_identity (Array.make 100 0))
  done;
  Obs.Gcprof.sample ();
  let c = Obs.Gcprof.counts () in
  Alcotest.(check bool)
    (Printf.sprintf "minor words track allocation (%.0f)" c.Obs.Gcprof.minor_words)
    true
    (c.Obs.Gcprof.minor_words >= 500_000.0);
  let before = c.Obs.Gcprof.major_collections in
  Gc.full_major ();
  Obs.Gcprof.sample ();
  let c = Obs.Gcprof.counts () in
  Alcotest.(check bool) "forced major visible in delta" true
    (c.Obs.Gcprof.major_collections > before);
  (* This domain owns a per-domain cell. *)
  let self = (Domain.self () :> int) in
  Alcotest.(check bool) "per-domain cell exists" true
    (List.mem_assoc self (Obs.Gcprof.per_domain ()));
  Alcotest.(check bool) "heap gauge positive" true (Obs.Gcprof.heap_words () > 0);
  (* Reset zeroes the accumulators but keeps the baseline: the next
     delta measures from now, not from process start. *)
  Obs.Gcprof.reset ();
  Obs.Gcprof.sample ();
  let c = Obs.Gcprof.counts () in
  Alcotest.(check bool)
    (Printf.sprintf "post-reset delta is small (%.0f)" c.Obs.Gcprof.minor_words)
    true
    (c.Obs.Gcprof.minor_words < 500_000.0)

(* --- Attribution coverage -------------------------------------------------- *)

let test_attribution_covers_wall () =
  with_profiling @@ fun () ->
  let spin_ms ms =
    let t0 = Obs.Clock.now_us () in
    let acc = ref 0 in
    while Obs.Clock.now_us () -. t0 < ms *. 1e3 do
      for i = 1 to 1_000 do
        acc := !acc + i
      done
    done;
    !acc
  in
  (* Oversubscribed: the coverage invariant is only interesting with
     real worker domains, and the test counts four attribution cells. *)
  Pool.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      ignore (Pool.map pool (fun _ -> spin_ms 5.0) (List.init 32 Fun.id)));
  let r = Obs.Attribution.report () in
  Alcotest.(check bool) "wall measured" true (r.Obs.Attribution.total_wall_us > 0.0);
  Alcotest.(check int) "all categories present"
    (List.length Obs.Attribution.categories)
    (List.length r.Obs.Attribution.totals);
  let task_run = List.assoc Obs.Attribution.Task_run r.Obs.Attribution.totals in
  Alcotest.(check bool) "task-run dominates" true
    (task_run > 0.5 *. r.Obs.Attribution.total_wall_us);
  Alcotest.(check bool)
    (Printf.sprintf "coverage >= 0.9 (%.3f)" r.Obs.Attribution.coverage)
    true
    (r.Obs.Attribution.coverage >= 0.9);
  (* Per domain, named + other must reconstruct the wall exactly (other
     is defined as the clamped remainder). *)
  List.iter
    (fun (d : Obs.Attribution.per_domain) ->
      let named = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 d.Obs.Attribution.net in
      Alcotest.(check bool)
        (Printf.sprintf "domain %d: named + other <= wall + eps" d.Obs.Attribution.dom)
        true
        (named +. d.Obs.Attribution.other_us
        <= d.Obs.Attribution.wall_us +. (0.01 *. d.Obs.Attribution.wall_us) +. 1.0))
    r.Obs.Attribution.domains;
  (* Parked workers with an empty queue were idle, and four domains
     participated. *)
  Alcotest.(check int) "one cell per pool domain" 4
    (List.length r.Obs.Attribution.domains)

(* --- Profiling never changes results -------------------------------------- *)

let profile_algos =
  [
    Specsyn.Explore.Random 10;
    Specsyn.Explore.Greedy;
    Specsyn.Explore.Annealing { Specsyn.Annealing.default_params with steps = 120 };
  ]

let test_profiler_differential () =
  let slif = Lazy.force Helpers.tiny_slif in
  let allocs = [ Specsyn.Alloc.proc_asic (); Specsyn.Alloc.proc_asic_mem () ] in
  let run_plain jobs =
    Specsyn.Report.explore_report ~timings:false
      (Specsyn.Explore.run ~jobs ~algos:profile_algos ~allocs slif)
  in
  let baseline = run_plain 1 in
  (* Fully armed stack, parallel run: byte-identical report. *)
  let profiled =
    with_profiling (fun () -> run_plain 2)
  in
  Alcotest.(check string) "armed profiler changes nothing" baseline profiled;
  (* And the driver's own cross-jobs digest check agrees. *)
  let t =
    Specsyn.Profiler.run ~name:"tiny" ~jobs:[ 1; 2 ] ~algos:profile_algos ~allocs slif
  in
  Alcotest.(check bool) "digests identical across -j" true t.Specsyn.Profiler.identical;
  Alcotest.(check int) "one run per domain count" 2 (List.length t.Specsyn.Profiler.runs);
  List.iter
    (fun (r : Specsyn.Profiler.run) ->
      (* The tiny spec finishes in milliseconds, so when the whole test
         binary is loading every core, scheduler noise can be a real
         fraction of a run's wall.  This is only a sanity floor — the
         >= 0.9 coverage bound is asserted by the attribution test above
         (on tasks long enough to amortize startup) and by CI's
         profile-smoke, which runs the real CLI with --min-coverage. *)
      Alcotest.(check bool)
        (Printf.sprintf "-j %d: coverage sane (%.3f)" r.p_jobs r.p_report.coverage)
        true
        (r.p_report.Obs.Attribution.coverage >= 0.25);
      Alcotest.(check bool) "tasks counted" true (r.Specsyn.Profiler.p_tasks > 0))
    t.Specsyn.Profiler.runs;
  (* The profiler leaves every switch off. *)
  Alcotest.(check bool) "registry off after run" false (Obs.Registry.on ());
  Alcotest.(check bool) "attribution off after run" false (Obs.Attribution.on ());
  Alcotest.(check bool) "lockprof off after run" false (Obs.Lockprof.on ());
  (* JSON surface sanity. *)
  let json = Obs.Json.to_string (Specsyn.Profiler.to_json t) in
  (match Obs.Json.parse json with
  | Error e -> Alcotest.fail ("profile JSON does not parse: " ^ e)
  | Ok j -> (
      match Obs.Json.member "schema" j with
      | Some (Obs.Json.String s) -> Alcotest.(check string) "schema" "slif-profile/1" s
      | _ -> Alcotest.fail "profile JSON lacks schema"));
  Alcotest.check_raises "empty jobs rejected"
    (Invalid_argument "Profiler.run: no domain counts") (fun () ->
      ignore (Specsyn.Profiler.run ~name:"tiny" ~jobs:[] slif));
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Profiler.run: jobs must be >= 1") (fun () ->
      ignore (Specsyn.Profiler.run ~name:"tiny" ~jobs:[ 0; 2 ] slif))

let suite =
  [
    Alcotest.test_case "pool stats across the lifecycle" `Quick test_pool_stats_lifecycle;
    Alcotest.test_case "pool stats on the serial path" `Quick test_pool_stats_serial;
    Alcotest.test_case "lockprof under 8-domain contention" `Slow test_lockprof_contention;
    Alcotest.test_case "condition park never counts as hold" `Quick
      test_lockprof_wait_excludes_park;
    Alcotest.test_case "gcprof folds quick_stat deltas" `Quick test_gcprof_delta;
    Alcotest.test_case "attribution covers >= 90% of wall" `Slow
      test_attribution_covers_wall;
    Alcotest.test_case "profiling never changes exploration results" `Slow
      test_profiler_differential;
  ]
