(* The persistent store: exact round-trips, totality under corruption,
   and the content-addressed cache. *)

module Store = Slif_store.Store
module Cache = Slif_store.Cache
module Ops = Slif_server.Ops

let annotated_of (spec : Specs.Registry.spec) = Ops.annotated spec.source

let all_specs = Specs.Registry.all

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let check_ok = function
  | Ok v -> v
  | Error err -> Alcotest.failf "unexpected store error: %s" (Store.error_message err)

(* --- Round trips ----------------------------------------------------------- *)

let test_roundtrip_structural () =
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let slif = annotated_of spec in
      let blob = Store.slif_to_string slif in
      let loaded, _prov = check_ok (Store.slif_of_string blob) in
      Alcotest.(check bool)
        (spec.spec_name ^ " round-trips structurally")
        true
        (Slif.Types.equal slif loaded))
    all_specs

(* The acceptance bar: estimates computed from the loaded graph equal the
   originals to the bit.  [estimate_output ~bounds:true] prints every
   process's min/avg/max execution time, so any float drift shows. *)
let test_roundtrip_estimates () =
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let slif = annotated_of spec in
      let loaded, _ = check_ok (Store.slif_of_string (Store.slif_to_string slif)) in
      Alcotest.(check string)
        (spec.spec_name ^ " estimates bit-identical")
        (Ops.estimate_output ~bounds:true slif)
        (Ops.estimate_output ~bounds:true loaded))
    all_specs

let test_roundtrip_serialization_stable () =
  let slif = annotated_of (List.hd all_specs) in
  let blob = Store.slif_to_string slif in
  let loaded, _ = check_ok (Store.slif_of_string blob) in
  Alcotest.(check string) "re-encoding is byte-identical" blob (Store.slif_to_string loaded)

let test_provenance_roundtrip () =
  let slif = Lazy.force Helpers.tiny_slif in
  let provenance =
    {
      Store.pv_source_md5 = Digest.to_hex (Digest.string "source");
      pv_profile = Some "branch p 0.25\n";
      pv_tech = Cache.tech_fingerprint ();
    }
  in
  let _, p = check_ok (Store.slif_of_string (Store.slif_to_string ~provenance slif)) in
  Alcotest.(check bool) "provenance travels" true (p = provenance)

let test_save_load_file () =
  let dir = temp_dir "slif_store" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let slif = Lazy.force Helpers.tiny_slif in
      let path = Filename.concat dir "tiny.slifstore" in
      Store.save_slif ~path slif;
      let loaded, _ = check_ok (Store.load_slif ~path) in
      Alcotest.(check bool) "file round-trip" true (Slif.Types.equal slif loaded))

(* --- Decisions ------------------------------------------------------------- *)

let test_decision_roundtrip () =
  let s, part = Helpers.all_on_cpu (Lazy.force Helpers.tiny_slif) in
  let blob = Store.decision_to_string ~note:"unit test" part in
  let loaded, note = check_ok (Store.decision_of_string s blob) in
  Alcotest.(check (option string)) "note travels" (Some "unit test") note;
  Alcotest.(check bool) "node assignments replayed" true
    (Slif.Partition.assignments part = Slif.Partition.assignments loaded);
  Alcotest.(check bool) "channel assignments replayed" true
    (Slif.Partition.chan_assignments part = Slif.Partition.chan_assignments loaded)

let test_decision_design_mismatch () =
  let _, part = Helpers.all_on_cpu (Lazy.force Helpers.tiny_slif) in
  let blob = Store.decision_to_string part in
  let other, _ = Helpers.all_on_cpu (Lazy.force Helpers.fuzzy_slif) in
  match Store.decision_of_string other blob with
  | Error (Store.Decode _) -> ()
  | Ok _ -> Alcotest.fail "decision replayed onto the wrong design"
  | Error err -> Alcotest.failf "wrong error: %s" (Store.error_message err)

let test_decision_rejects_slif_container () =
  let slif = Lazy.force Helpers.tiny_slif in
  let s, _ = Helpers.all_on_cpu slif in
  match Store.decision_of_string s (Store.slif_to_string slif) with
  | Error (Store.Decode _) -> ()
  | Ok _ -> Alcotest.fail "a SLIF container is not a decision"
  | Error err -> Alcotest.failf "wrong error: %s" (Store.error_message err)

(* --- Corruption: every damaged input yields a typed error ------------------ *)

let tiny_blob = lazy (Store.slif_to_string (Lazy.force Helpers.tiny_slif))

let test_wrong_magic () =
  let blob = Lazy.force tiny_blob in
  let bad = Bytes.of_string blob in
  Bytes.set bad 0 'X';
  (match Store.slif_of_string (Bytes.to_string bad) with
  | Error Store.Bad_magic -> ()
  | _ -> Alcotest.fail "flipped magic not detected");
  match Store.slif_of_string "short" with
  | Error Store.Bad_magic -> ()
  | _ -> Alcotest.fail "undersized input not rejected as bad magic"

let test_future_version () =
  let blob = Lazy.force tiny_blob in
  let bad = Bytes.of_string blob in
  Bytes.set_int32_le bad 8 99l;
  match Store.slif_of_string (Bytes.to_string bad) with
  | Error (Store.Unsupported_version 99) -> ()
  | _ -> Alcotest.fail "future format version not rejected"

let test_truncations () =
  let blob = Lazy.force tiny_blob in
  (* Every strict prefix must fail with a typed error — never succeed,
     never raise. *)
  let len = String.length blob in
  for cut = 0 to len - 1 do
    if cut mod 7 = 0 || cut > len - 32 then
      match Store.slif_of_string (String.sub blob 0 cut) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "truncation to %d bytes decoded successfully" cut
  done

let test_crc_flip () =
  let blob = Lazy.force tiny_blob in
  (* Flip a byte inside the first section's payload (header is 12 magic+
     version bytes, then 12 bytes of section header). *)
  let bad = Bytes.of_string blob in
  let pos = 12 + 12 + 2 in
  Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor 0x40));
  match Store.slif_of_string (Bytes.to_string bad) with
  | Error (Store.Checksum_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "payload corruption not caught by CRC"
  | Error err -> Alcotest.failf "wrong error: %s" (Store.error_message err)

(* Seeded fuzz over every bundled spec's blob: random single-byte flips
   and truncations must always produce a typed error (a flipped byte is
   always covered by the magic, the version field, a section header or a
   CRC-checked payload — nothing is slack). *)
let fuzz_blob name blob seed =
  let prng = Slif_util.Prng.create seed in
  let len = String.length blob in
  for _ = 1 to 200 do
    let mutated =
      if Slif_util.Prng.bool prng then begin
        let bad = Bytes.of_string blob in
        let pos = Slif_util.Prng.int prng len in
        let bit = 1 lsl Slif_util.Prng.int prng 8 in
        Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor bit));
        Bytes.to_string bad
      end
      else String.sub blob 0 (Slif_util.Prng.int prng len)
    in
    match Store.slif_of_string mutated with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupted blob decoded successfully (seed %d)" name seed
    | exception e ->
        Alcotest.failf "%s: corruption escaped as exception %s (seed %d)" name
          (Printexc.to_string e) seed
  done

let test_fuzz_corruption () =
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let blob = Store.slif_to_string (annotated_of spec) in
      fuzz_blob spec.spec_name blob 42)
    all_specs;
  Helpers.replay_corpus "store_corruption" (fun seed ->
      fuzz_blob "tiny" (Lazy.force tiny_blob) seed)

let test_inspect () =
  let info = check_ok (Store.inspect (Lazy.force tiny_blob)) in
  Alcotest.(check int) "version" Store.format_version info.Store.si_version;
  Alcotest.(check bool) "kind" true (info.Store.si_kind = Store.Kslif);
  Alcotest.(check string) "design" "tiny" info.Store.si_design;
  let tags = List.map (fun s -> s.Store.sec_tag) info.Store.si_sections in
  List.iter
    (fun tag ->
      Alcotest.(check bool) (tag ^ " section present") true (List.mem tag tags))
    [ "META"; "NODE"; "PORT"; "CHAN"; "COMP" ]

(* --- Codec primitives: varint boundaries, CRC edges ------------------------ *)

module Codec = Slif_store.Codec
module Crc32 = Slif_store.Crc32

(* LEB128 and zigzag at every byte-count boundary plus the int63
   extremes: the values where an off-by-one in continuation bits or
   sign folding would corrupt silently. *)
let test_varint_boundaries () =
  let uint_cases =
    [ (0, 1); (1, 1); (127, 1); (128, 2); (16383, 2); (16384, 3); (max_int, 9) ]
  in
  List.iter
    (fun (v, bytes) ->
      let w = Codec.W.create () in
      Codec.W.uint w v;
      let s = Codec.W.contents w in
      Alcotest.(check int) (Printf.sprintf "uint %d width" v) bytes (String.length s);
      let r = Codec.R.of_string s in
      Alcotest.(check int) (Printf.sprintf "uint %d round-trip" v) v (Codec.R.uint r);
      Alcotest.(check bool) "consumed exactly" true (Codec.R.eof r))
    uint_cases;
  (match
     let w = Codec.W.create () in
     Codec.W.uint w (-1)
   with
  | () -> Alcotest.fail "negative uint accepted"
  | exception Invalid_argument _ -> ());
  (* Zigzag: small magnitudes of either sign stay one byte; the int63
     extremes survive the fold. *)
  let int_cases =
    [ 0; 1; -1; 63; -64; 64; -65; 8191; -8192; max_int; min_int; min_int + 1 ]
  in
  List.iter
    (fun v ->
      let w = Codec.W.create () in
      Codec.W.int w v;
      let r = Codec.R.of_string (Codec.W.contents w) in
      Alcotest.(check int) (Printf.sprintf "int %d round-trip" v) v (Codec.R.int r);
      Alcotest.(check bool) "consumed exactly" true (Codec.R.eof r))
    int_cases;
  let width v =
    let w = Codec.W.create () in
    Codec.W.int w v;
    String.length (Codec.W.contents w)
  in
  Alcotest.(check int) "zigzag 63 is one byte" 1 (width 63);
  Alcotest.(check int) "zigzag -64 is one byte" 1 (width (-64));
  Alcotest.(check int) "zigzag 64 is two bytes" 2 (width 64);
  Alcotest.(check int) "zigzag -65 is two bytes" 2 (width (-65))

let test_crc_empty () =
  Alcotest.(check int32) "crc of empty is zero" 0l (Crc32.string "");
  Alcotest.(check int32) "zero-length sub matches empty" (Crc32.string "")
    (Crc32.sub "abcdef" ~pos:3 ~len:0);
  Alcotest.(check bool) "crc of a byte is not zero" true (Crc32.string "\x00" <> 0l)

(* A hand-assembled v2 container whose single section has a zero-length
   payload: the directory parses, the section fetch verifies the empty
   CRC, and the payload is "". *)
let test_v2_zero_length_section () =
  let b = Buffer.create 64 in
  let u32 v =
    for i = 0 to 3 do
      Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  let u64 v =
    for i = 0 to 7 do
      Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  Buffer.add_string b Store.magic;
  u32 Store.format_version_v2;
  let dir = Buffer.create 32 in
  let payload_off = 8 + 4 + 4 + 24 + 4 in
  Buffer.add_string dir "ZERO";
  (* entry: tag, u64 off, u64 len, u32 crc — built via the same helpers *)
  let saved = Buffer.contents b in
  Buffer.clear b;
  u64 payload_off;
  u64 0;
  u32 (Int32.to_int (Crc32.string "") land 0xffffffff);
  let entry_rest = Buffer.contents b in
  Buffer.clear b;
  Buffer.add_string b saved;
  u32 1;
  let dir_bytes = Buffer.contents dir ^ entry_rest in
  Buffer.add_string b dir_bytes;
  u32 (Int32.to_int (Crc32.string dir_bytes) land 0xffffffff);
  let blob = Buffer.contents b in
  let fetch ~pos ~len =
    if pos < 0 || len < 0 || pos + len > String.length blob then ""
    else String.sub blob pos len
  in
  let entries = check_ok (Store.v2_directory ~total:(String.length blob) fetch) in
  Alcotest.(check int) "one entry" 1 (List.length entries);
  let payload = check_ok (Store.v2_section ~fetch entries "ZERO") in
  Alcotest.(check string) "zero-length payload" "" payload

(* --- Format v2: round trips, inspection, laziness -------------------------- *)

let test_v2_roundtrip () =
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let slif = annotated_of spec in
      let blob = Store.slif_to_string ~version:Store.format_version_v2 slif in
      let loaded, _prov = check_ok (Store.slif_of_string blob) in
      Alcotest.(check bool)
        (spec.spec_name ^ " v2 round-trips") true
        (Slif.Types.equal slif loaded);
      Alcotest.(check string)
        (spec.spec_name ^ " v2 re-encoding stable")
        blob
        (Store.slif_to_string ~version:Store.format_version_v2 loaded))
    all_specs

let test_v2_smaller_than_v1 () =
  let slif = annotated_of (Specs.Registry.find_exn "fuzzy") in
  let v1 = String.length (Store.slif_to_string slif) in
  let v2 = String.length (Store.slif_to_string ~version:Store.format_version_v2 slif) in
  Alcotest.(check bool)
    (Printf.sprintf "tech interning shrinks the container (v1 %d, v2 %d)" v1 v2)
    true (v2 < v1)

let test_v2_inspect () =
  let slif = Lazy.force Helpers.tiny_slif in
  let blob = Store.slif_to_string ~version:Store.format_version_v2 slif in
  let info = check_ok (Store.inspect blob) in
  Alcotest.(check int) "version" Store.format_version_v2 info.Store.si_version;
  Alcotest.(check string) "design" "tiny" info.Store.si_design;
  let tags = List.map (fun s -> s.Store.sec_tag) info.Store.si_sections in
  List.iter
    (fun tag ->
      Alcotest.(check bool) (tag ^ " section present") true (List.mem tag tags))
    [ "META"; "PROV"; "TECH"; "NODE"; "PORT"; "CHAN"; "COMP" ];
  (* The recorded offsets really frame the payloads: CRC them in place. *)
  List.iter
    (fun (s : Store.section_info) ->
      Alcotest.(check int32)
        (s.Store.sec_tag ^ " offset/size frame the payload")
        s.Store.sec_crc
        (Crc32.sub blob ~pos:s.Store.sec_offset ~len:s.Store.sec_size))
    info.Store.si_sections

let test_v2_fuzz_corruption () =
  let blob =
    Store.slif_to_string ~version:Store.format_version_v2 (Lazy.force Helpers.tiny_slif)
  in
  fuzz_blob "tiny-v2" blob 43

let test_lazy_store () =
  let module Lazy_store = Slif_store.Lazy_store in
  let slif = annotated_of (Specs.Registry.find_exn "fuzzy") in
  let path = Filename.temp_file "slif_lazy" ".slifstore" in
  (* The decode counter only counts while the registry records. *)
  Slif_obs.Registry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Slif_obs.Registry.disable ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save_slif ~path ~version:Store.format_version_v2 slif;
      let decodes () = Slif_obs.Counter.get "store.lazy.full_decode" in
      let before = decodes () in
      let h =
        match Lazy_store.open_file path with
        | Ok h -> h
        | Error err -> Alcotest.failf "open_file: %s" (Store.error_message err)
      in
      (* Metadata queries decode no graph section. *)
      let m = Lazy_store.meta h in
      Alcotest.(check int) "META node count"
        (Array.length slif.Slif.Types.nodes)
        m.Store.vm_nodes;
      Alcotest.(check int) "META channel count"
        (Array.length slif.Slif.Types.chans)
        m.Store.vm_chans;
      Alcotest.(check string) "design" slif.Slif.Types.design_name (Lazy_store.design h);
      Alcotest.(check bool) "decoded-bytes estimate is positive" true
        (Lazy_store.decoded_bytes_estimate h > 0);
      Alcotest.(check bool) "not decoded yet" false (Lazy_store.decoded h);
      Alcotest.(check int) "no decode counted" before (decodes ());
      (* Forcing decodes once; the result is exact and memoized. *)
      let loaded, _prov =
        match Lazy_store.slif h with
        | Ok r -> r
        | Error err -> Alcotest.failf "slif: %s" (Store.error_message err)
      in
      Alcotest.(check bool) "decode is exact" true (Slif.Types.equal slif loaded);
      Alcotest.(check bool) "decoded now" true (Lazy_store.decoded h);
      Alcotest.(check int) "one decode counted" (before + 1) (decodes ());
      ignore (check_ok (Lazy_store.slif h));
      Alcotest.(check int) "second force is memoized" (before + 1) (decodes ()))

let test_lazy_store_rejects_v1 () =
  let module Lazy_store = Slif_store.Lazy_store in
  let slif = Lazy.force Helpers.tiny_slif in
  let path = Filename.temp_file "slif_lazy_v1" ".slifstore" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save_slif ~path slif;
      match Lazy_store.open_file path with
      | Error (Store.Unsupported_version 1) -> ()
      | Ok _ -> Alcotest.fail "v1 container opened lazily"
      | Error err -> Alcotest.failf "wrong error: %s" (Store.error_message err))

(* Opening a large container must not pull the graph onto the heap:
   the resident cost of a handle is the directory + META, not the
   decoded estimate. *)
let test_lazy_store_heap_bound () =
  let module Lazy_store = Slif_store.Lazy_store in
  let p = Slif_synth.Synth.default_params ~seed:11 ~nodes:50_000 Slif_synth.Synth.Mixed in
  let slif = Slif_synth.Synth.generate p in
  let path = Filename.temp_file "slif_lazy_big" ".slifstore" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save_slif ~path ~version:Store.format_version_v2 slif;
      Gc.full_major ();
      let before = (Gc.quick_stat ()).Gc.heap_words in
      let h =
        match Lazy_store.open_file path with
        | Ok h -> h
        | Error err -> Alcotest.failf "open_file: %s" (Store.error_message err)
      in
      Gc.full_major ();
      let after = (Gc.quick_stat ()).Gc.heap_words in
      let grown_bytes = (after - before) * (Sys.word_size / 8) in
      let estimate = Lazy_store.decoded_bytes_estimate h in
      Alcotest.(check bool)
        (Printf.sprintf
           "metadata-only open stays small (grew %d bytes, decoded estimate %d)"
           grown_bytes estimate)
        true
        (grown_bytes < estimate / 4);
      Alcotest.(check bool) "still not decoded" false (Lazy_store.decoded h))

(* A directory entry whose offset + length sum wraps past max_int used
   to slip through the bounds check and reach an out-of-bounds mmap
   read; both the string and the mapped decoder must answer with a
   typed error instead. *)
let test_v2_overflowing_directory () =
  let blob =
    Store.slif_to_string ~version:Store.format_version_v2 (Lazy.force Helpers.tiny_slif)
  in
  let bad = Bytes.of_string blob in
  let count = Int32.to_int (Bytes.get_int32_le bad 12) in
  Alcotest.(check bool) "container has sections" true (count > 0);
  (* Entry 0 sits at 16: tag (4), offset (u64), length (u64), crc (u32).
     max_int - 1000 + 2000 wraps negative, defeating a summed check. *)
  Bytes.set_int64_le bad 20 (Int64.of_int (max_int - 1000));
  Bytes.set_int64_le bad 28 2000L;
  (* Re-seal the directory CRC so only the bounds check can object. *)
  let dir = Bytes.sub_string bad 16 (count * 24) in
  Bytes.set_int32_le bad (16 + (count * 24)) (Slif_store.Crc32.string dir);
  let text = Bytes.to_string bad in
  (match Store.slif_of_string text with
  | Error (Store.Truncated _) -> ()
  | Ok _ -> Alcotest.fail "overflowing directory entry decoded successfully"
  | Error err -> Alcotest.failf "wrong error: %s" (Store.error_message err)
  | exception e -> Alcotest.failf "escaped as exception %s" (Printexc.to_string e));
  let path = Filename.temp_file "slif_overflow" ".slifstore" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc;
      match Slif_store.Lazy_store.open_file path with
      | Error (Store.Truncated _) -> ()
      | Ok _ -> Alcotest.fail "overflowing directory entry opened lazily"
      | Error err -> Alcotest.failf "wrong error: %s" (Store.error_message err)
      | exception e -> Alcotest.failf "escaped as exception %s" (Printexc.to_string e))

(* The handle's memo is weak: once the caller's reference dies the
   decoded graph is collectable, so a long-lived handle (the daemon's
   handle cache) never pins a decode past LRU eviction. *)
let test_lazy_store_memo_release () =
  let module Lazy_store = Slif_store.Lazy_store in
  let slif = annotated_of (Specs.Registry.find_exn "fuzzy") in
  let path = Filename.temp_file "slif_lazy_weak" ".slifstore" in
  Slif_obs.Registry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Slif_obs.Registry.disable ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save_slif ~path ~version:Store.format_version_v2 slif;
      let decodes () = Slif_obs.Counter.get "store.lazy.full_decode" in
      let before = decodes () in
      let h =
        match Lazy_store.open_file path with
        | Ok h -> h
        | Error err -> Alcotest.failf "open_file: %s" (Store.error_message err)
      in
      (* The decoded graph's only strong reference lives (and dies) in
         this helper's frame. *)
      let decode_nodes () =
        match Lazy_store.slif h with
        | Ok (s, _) ->
            Alcotest.(check bool) "memoized while referenced" true
              (Lazy_store.decoded h);
            Array.length s.Slif.Types.nodes
        | Error err -> Alcotest.failf "slif: %s" (Store.error_message err)
      in
      let n = decode_nodes () in
      Alcotest.(check int) "decode is complete" (Array.length slif.Slif.Types.nodes) n;
      Alcotest.(check int) "one decode counted" (before + 1) (decodes ());
      Gc.full_major ();
      Alcotest.(check bool) "memo released after GC" false (Lazy_store.decoded h);
      (* A later force decodes afresh — the handle held no copy. *)
      ignore (decode_nodes ());
      Alcotest.(check int) "release forces a real re-decode" (before + 2) (decodes ()))

(* Staleness: [save_slif] regenerates by atomic rename, so the mapped
   inode no longer matches the path. *)
let test_lazy_store_stale () =
  let module Lazy_store = Slif_store.Lazy_store in
  let slif = Lazy.force Helpers.tiny_slif in
  let path = Filename.temp_file "slif_lazy_stale" ".slifstore" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save_slif ~path ~version:Store.format_version_v2 slif;
      let h =
        match Lazy_store.open_file path with
        | Ok h -> h
        | Error err -> Alcotest.failf "open_file: %s" (Store.error_message err)
      in
      Alcotest.(check bool) "fresh handle is current" false (Lazy_store.stale h);
      Store.save_slif ~path ~version:Store.format_version_v2 slif;
      Alcotest.(check bool) "regeneration detected" true (Lazy_store.stale h);
      Sys.remove path;
      Alcotest.(check bool) "unlinked file detected" true (Lazy_store.stale h))

(* --- Cache ----------------------------------------------------------------- *)

let test_cache_key_sensitivity () =
  let k = Cache.key ~source:"abc" () in
  Alcotest.(check bool) "source changes key" true (k <> Cache.key ~source:"abd" ());
  Alcotest.(check bool) "profile changes key" true
    (k <> Cache.key ~source:"abc" ~profile:"p" ());
  Alcotest.(check bool) "empty profile differs from none" true
    (Cache.key ~source:"abc" ~profile:"" () <> k);
  Alcotest.(check string) "key is deterministic" k (Cache.key ~source:"abc" ())

let test_cache_hit_miss_rebuild () =
  let dir = temp_dir "slif_cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let source = Helpers.tiny_source in
      let builds = ref 0 in
      let build () =
        incr builds;
        Ops.annotated source
      in
      let load () = Cache.load_or_build ~dir ~source ~build () in
      let slif1, o1 = load () in
      let slif2, o2 = load () in
      Alcotest.(check bool) "first access misses" true (o1 = `Miss);
      Alcotest.(check bool) "second access hits" true (o2 = `Hit);
      Alcotest.(check int) "built exactly once" 1 !builds;
      Alcotest.(check bool) "cached graph identical" true (Slif.Types.equal slif1 slif2);
      (* Corrupt the entry: the next access rebuilds instead of trusting it. *)
      let entry = Cache.entry_path ~dir ~key:(Cache.key ~source ()) in
      let oc = open_out_bin entry in
      output_string oc "garbage";
      close_out oc;
      let slif3, o3 = load () in
      Alcotest.(check bool) "corrupt entry rebuilt" true (o3 = `Rebuilt);
      Alcotest.(check int) "rebuild ran the builder" 2 !builds;
      Alcotest.(check bool) "rebuilt graph identical" true (Slif.Types.equal slif1 slif3))

let test_cache_unusable_dir () =
  let file = Filename.temp_file "slif_cache" ".notadir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let dir = Filename.concat file "sub" in
      match
        Cache.load_or_build ~dir ~source:"x" ~build:(fun () -> Lazy.force Helpers.tiny_slif) ()
      with
      | _ -> Alcotest.fail "unusable cache dir accepted"
      | exception Store.Store_error (Store.Io _) -> ())

let suite =
  [
    Alcotest.test_case "round-trip structural (all specs)" `Quick test_roundtrip_structural;
    Alcotest.test_case "round-trip estimates to the bit" `Quick test_roundtrip_estimates;
    Alcotest.test_case "re-encoding stable" `Quick test_roundtrip_serialization_stable;
    Alcotest.test_case "provenance round-trip" `Quick test_provenance_roundtrip;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
    Alcotest.test_case "decision round-trip" `Quick test_decision_roundtrip;
    Alcotest.test_case "decision design mismatch" `Quick test_decision_design_mismatch;
    Alcotest.test_case "decision rejects slif container" `Quick test_decision_rejects_slif_container;
    Alcotest.test_case "wrong magic" `Quick test_wrong_magic;
    Alcotest.test_case "future version" `Quick test_future_version;
    Alcotest.test_case "truncations all rejected" `Quick test_truncations;
    Alcotest.test_case "CRC catches payload flip" `Quick test_crc_flip;
    Alcotest.test_case "fuzz: corruption is total" `Slow test_fuzz_corruption;
    Alcotest.test_case "inspect" `Quick test_inspect;
    Alcotest.test_case "varint boundaries" `Quick test_varint_boundaries;
    Alcotest.test_case "CRC of empty input" `Quick test_crc_empty;
    Alcotest.test_case "v2 zero-length section" `Quick test_v2_zero_length_section;
    Alcotest.test_case "v2 round-trip (all specs)" `Quick test_v2_roundtrip;
    Alcotest.test_case "v2 smaller than v1" `Quick test_v2_smaller_than_v1;
    Alcotest.test_case "v2 inspect" `Quick test_v2_inspect;
    Alcotest.test_case "v2 fuzz: corruption is total" `Slow test_v2_fuzz_corruption;
    Alcotest.test_case "lazy store: metadata without decode" `Quick test_lazy_store;
    Alcotest.test_case "lazy store rejects v1" `Quick test_lazy_store_rejects_v1;
    Alcotest.test_case "lazy store heap bound" `Quick test_lazy_store_heap_bound;
    Alcotest.test_case "v2 overflowing directory rejected" `Quick
      test_v2_overflowing_directory;
    Alcotest.test_case "lazy store memo released on drop" `Quick
      test_lazy_store_memo_release;
    Alcotest.test_case "lazy store staleness" `Quick test_lazy_store_stale;
    Alcotest.test_case "cache key sensitivity" `Quick test_cache_key_sensitivity;
    Alcotest.test_case "cache hit/miss/rebuild" `Quick test_cache_hit_miss_rebuild;
    Alcotest.test_case "cache unusable dir" `Quick test_cache_unusable_dir;
  ]
