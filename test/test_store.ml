(* The persistent store: exact round-trips, totality under corruption,
   and the content-addressed cache. *)

module Store = Slif_store.Store
module Cache = Slif_store.Cache
module Ops = Slif_server.Ops

let annotated_of (spec : Specs.Registry.spec) = Ops.annotated spec.source

let all_specs = Specs.Registry.all

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let check_ok = function
  | Ok v -> v
  | Error err -> Alcotest.failf "unexpected store error: %s" (Store.error_message err)

(* --- Round trips ----------------------------------------------------------- *)

let test_roundtrip_structural () =
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let slif = annotated_of spec in
      let blob = Store.slif_to_string slif in
      let loaded, _prov = check_ok (Store.slif_of_string blob) in
      Alcotest.(check bool)
        (spec.spec_name ^ " round-trips structurally")
        true
        (Slif.Types.equal slif loaded))
    all_specs

(* The acceptance bar: estimates computed from the loaded graph equal the
   originals to the bit.  [estimate_output ~bounds:true] prints every
   process's min/avg/max execution time, so any float drift shows. *)
let test_roundtrip_estimates () =
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let slif = annotated_of spec in
      let loaded, _ = check_ok (Store.slif_of_string (Store.slif_to_string slif)) in
      Alcotest.(check string)
        (spec.spec_name ^ " estimates bit-identical")
        (Ops.estimate_output ~bounds:true slif)
        (Ops.estimate_output ~bounds:true loaded))
    all_specs

let test_roundtrip_serialization_stable () =
  let slif = annotated_of (List.hd all_specs) in
  let blob = Store.slif_to_string slif in
  let loaded, _ = check_ok (Store.slif_of_string blob) in
  Alcotest.(check string) "re-encoding is byte-identical" blob (Store.slif_to_string loaded)

let test_provenance_roundtrip () =
  let slif = Lazy.force Helpers.tiny_slif in
  let provenance =
    {
      Store.pv_source_md5 = Digest.to_hex (Digest.string "source");
      pv_profile = Some "branch p 0.25\n";
      pv_tech = Cache.tech_fingerprint ();
    }
  in
  let _, p = check_ok (Store.slif_of_string (Store.slif_to_string ~provenance slif)) in
  Alcotest.(check bool) "provenance travels" true (p = provenance)

let test_save_load_file () =
  let dir = temp_dir "slif_store" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let slif = Lazy.force Helpers.tiny_slif in
      let path = Filename.concat dir "tiny.slifstore" in
      Store.save_slif ~path slif;
      let loaded, _ = check_ok (Store.load_slif ~path) in
      Alcotest.(check bool) "file round-trip" true (Slif.Types.equal slif loaded))

(* --- Decisions ------------------------------------------------------------- *)

let test_decision_roundtrip () =
  let s, part = Helpers.all_on_cpu (Lazy.force Helpers.tiny_slif) in
  let blob = Store.decision_to_string ~note:"unit test" part in
  let loaded, note = check_ok (Store.decision_of_string s blob) in
  Alcotest.(check (option string)) "note travels" (Some "unit test") note;
  Alcotest.(check bool) "node assignments replayed" true
    (Slif.Partition.assignments part = Slif.Partition.assignments loaded);
  Alcotest.(check bool) "channel assignments replayed" true
    (Slif.Partition.chan_assignments part = Slif.Partition.chan_assignments loaded)

let test_decision_design_mismatch () =
  let _, part = Helpers.all_on_cpu (Lazy.force Helpers.tiny_slif) in
  let blob = Store.decision_to_string part in
  let other, _ = Helpers.all_on_cpu (Lazy.force Helpers.fuzzy_slif) in
  match Store.decision_of_string other blob with
  | Error (Store.Decode _) -> ()
  | Ok _ -> Alcotest.fail "decision replayed onto the wrong design"
  | Error err -> Alcotest.failf "wrong error: %s" (Store.error_message err)

let test_decision_rejects_slif_container () =
  let slif = Lazy.force Helpers.tiny_slif in
  let s, _ = Helpers.all_on_cpu slif in
  match Store.decision_of_string s (Store.slif_to_string slif) with
  | Error (Store.Decode _) -> ()
  | Ok _ -> Alcotest.fail "a SLIF container is not a decision"
  | Error err -> Alcotest.failf "wrong error: %s" (Store.error_message err)

(* --- Corruption: every damaged input yields a typed error ------------------ *)

let tiny_blob = lazy (Store.slif_to_string (Lazy.force Helpers.tiny_slif))

let test_wrong_magic () =
  let blob = Lazy.force tiny_blob in
  let bad = Bytes.of_string blob in
  Bytes.set bad 0 'X';
  (match Store.slif_of_string (Bytes.to_string bad) with
  | Error Store.Bad_magic -> ()
  | _ -> Alcotest.fail "flipped magic not detected");
  match Store.slif_of_string "short" with
  | Error Store.Bad_magic -> ()
  | _ -> Alcotest.fail "undersized input not rejected as bad magic"

let test_future_version () =
  let blob = Lazy.force tiny_blob in
  let bad = Bytes.of_string blob in
  Bytes.set_int32_le bad 8 99l;
  match Store.slif_of_string (Bytes.to_string bad) with
  | Error (Store.Unsupported_version 99) -> ()
  | _ -> Alcotest.fail "future format version not rejected"

let test_truncations () =
  let blob = Lazy.force tiny_blob in
  (* Every strict prefix must fail with a typed error — never succeed,
     never raise. *)
  let len = String.length blob in
  for cut = 0 to len - 1 do
    if cut mod 7 = 0 || cut > len - 32 then
      match Store.slif_of_string (String.sub blob 0 cut) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "truncation to %d bytes decoded successfully" cut
  done

let test_crc_flip () =
  let blob = Lazy.force tiny_blob in
  (* Flip a byte inside the first section's payload (header is 12 magic+
     version bytes, then 12 bytes of section header). *)
  let bad = Bytes.of_string blob in
  let pos = 12 + 12 + 2 in
  Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor 0x40));
  match Store.slif_of_string (Bytes.to_string bad) with
  | Error (Store.Checksum_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "payload corruption not caught by CRC"
  | Error err -> Alcotest.failf "wrong error: %s" (Store.error_message err)

(* Seeded fuzz over every bundled spec's blob: random single-byte flips
   and truncations must always produce a typed error (a flipped byte is
   always covered by the magic, the version field, a section header or a
   CRC-checked payload — nothing is slack). *)
let fuzz_blob name blob seed =
  let prng = Slif_util.Prng.create seed in
  let len = String.length blob in
  for _ = 1 to 200 do
    let mutated =
      if Slif_util.Prng.bool prng then begin
        let bad = Bytes.of_string blob in
        let pos = Slif_util.Prng.int prng len in
        let bit = 1 lsl Slif_util.Prng.int prng 8 in
        Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor bit));
        Bytes.to_string bad
      end
      else String.sub blob 0 (Slif_util.Prng.int prng len)
    in
    match Store.slif_of_string mutated with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupted blob decoded successfully (seed %d)" name seed
    | exception e ->
        Alcotest.failf "%s: corruption escaped as exception %s (seed %d)" name
          (Printexc.to_string e) seed
  done

let test_fuzz_corruption () =
  List.iter
    (fun (spec : Specs.Registry.spec) ->
      let blob = Store.slif_to_string (annotated_of spec) in
      fuzz_blob spec.spec_name blob 42)
    all_specs;
  Helpers.replay_corpus "store_corruption" (fun seed ->
      fuzz_blob "tiny" (Lazy.force tiny_blob) seed)

let test_inspect () =
  let info = check_ok (Store.inspect (Lazy.force tiny_blob)) in
  Alcotest.(check int) "version" Store.format_version info.Store.si_version;
  Alcotest.(check bool) "kind" true (info.Store.si_kind = Store.Kslif);
  Alcotest.(check string) "design" "tiny" info.Store.si_design;
  let tags = List.map fst info.Store.si_sections in
  List.iter
    (fun tag ->
      Alcotest.(check bool) (tag ^ " section present") true (List.mem tag tags))
    [ "META"; "NODE"; "PORT"; "CHAN"; "COMP" ]

(* --- Cache ----------------------------------------------------------------- *)

let test_cache_key_sensitivity () =
  let k = Cache.key ~source:"abc" () in
  Alcotest.(check bool) "source changes key" true (k <> Cache.key ~source:"abd" ());
  Alcotest.(check bool) "profile changes key" true
    (k <> Cache.key ~source:"abc" ~profile:"p" ());
  Alcotest.(check bool) "empty profile differs from none" true
    (Cache.key ~source:"abc" ~profile:"" () <> k);
  Alcotest.(check string) "key is deterministic" k (Cache.key ~source:"abc" ())

let test_cache_hit_miss_rebuild () =
  let dir = temp_dir "slif_cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let source = Helpers.tiny_source in
      let builds = ref 0 in
      let build () =
        incr builds;
        Ops.annotated source
      in
      let load () = Cache.load_or_build ~dir ~source ~build () in
      let slif1, o1 = load () in
      let slif2, o2 = load () in
      Alcotest.(check bool) "first access misses" true (o1 = `Miss);
      Alcotest.(check bool) "second access hits" true (o2 = `Hit);
      Alcotest.(check int) "built exactly once" 1 !builds;
      Alcotest.(check bool) "cached graph identical" true (Slif.Types.equal slif1 slif2);
      (* Corrupt the entry: the next access rebuilds instead of trusting it. *)
      let entry = Cache.entry_path ~dir ~key:(Cache.key ~source ()) in
      let oc = open_out_bin entry in
      output_string oc "garbage";
      close_out oc;
      let slif3, o3 = load () in
      Alcotest.(check bool) "corrupt entry rebuilt" true (o3 = `Rebuilt);
      Alcotest.(check int) "rebuild ran the builder" 2 !builds;
      Alcotest.(check bool) "rebuilt graph identical" true (Slif.Types.equal slif1 slif3))

let test_cache_unusable_dir () =
  let file = Filename.temp_file "slif_cache" ".notadir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let dir = Filename.concat file "sub" in
      match
        Cache.load_or_build ~dir ~source:"x" ~build:(fun () -> Lazy.force Helpers.tiny_slif) ()
      with
      | _ -> Alcotest.fail "unusable cache dir accepted"
      | exception Store.Store_error (Store.Io _) -> ())

let suite =
  [
    Alcotest.test_case "round-trip structural (all specs)" `Quick test_roundtrip_structural;
    Alcotest.test_case "round-trip estimates to the bit" `Quick test_roundtrip_estimates;
    Alcotest.test_case "re-encoding stable" `Quick test_roundtrip_serialization_stable;
    Alcotest.test_case "provenance round-trip" `Quick test_provenance_roundtrip;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
    Alcotest.test_case "decision round-trip" `Quick test_decision_roundtrip;
    Alcotest.test_case "decision design mismatch" `Quick test_decision_design_mismatch;
    Alcotest.test_case "decision rejects slif container" `Quick test_decision_rejects_slif_container;
    Alcotest.test_case "wrong magic" `Quick test_wrong_magic;
    Alcotest.test_case "future version" `Quick test_future_version;
    Alcotest.test_case "truncations all rejected" `Quick test_truncations;
    Alcotest.test_case "CRC catches payload flip" `Quick test_crc_flip;
    Alcotest.test_case "fuzz: corruption is total" `Slow test_fuzz_corruption;
    Alcotest.test_case "inspect" `Quick test_inspect;
    Alcotest.test_case "cache key sensitivity" `Quick test_cache_key_sensitivity;
    Alcotest.test_case "cache hit/miss/rebuild" `Quick test_cache_hit_miss_rebuild;
    Alcotest.test_case "cache unusable dir" `Quick test_cache_unusable_dir;
  ]
