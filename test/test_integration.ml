(* End-to-end runs over the four bundled benchmark specifications. *)

let pipelines =
  lazy
    (List.map
       (fun (spec : Specs.Registry.spec) ->
         let design = Vhdl.Parser.parse spec.source in
         let sem = Vhdl.Sem.build design in
         let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
         (spec, design, sem, slif))
       Specs.Registry.all)

let test_all_specs_parse_and_build () =
  List.iter
    (fun ((spec : Specs.Registry.spec), _, _, slif) ->
      let stats = Slif.Stats.of_slif slif in
      Alcotest.(check bool) (spec.spec_name ^ " has nodes") true (stats.Slif.Stats.bv > 10);
      Alcotest.(check bool) (spec.spec_name ^ " has channels") true
        (stats.Slif.Stats.channels > 10))
    (Lazy.force pipelines)

let test_bv_counts_track_paper () =
  (* Within 2x of the paper's BV column — the scale, not the digits —
     and the same ordering across examples (vol < fuzzy < ans < ether). *)
  List.iter
    (fun ((spec : Specs.Registry.spec), _, _, slif) ->
      let stats = Slif.Stats.of_slif slif in
      let ratio = float_of_int stats.Slif.Stats.bv /. float_of_int spec.paper_bv in
      Alcotest.(check bool)
        (Printf.sprintf "%s BV %d vs paper %d" spec.spec_name stats.Slif.Stats.bv spec.paper_bv)
        true
        (ratio > 0.5 && ratio < 2.0))
    (Lazy.force pipelines);
  let bv name =
    let _, _, _, slif =
      List.find (fun ((s : Specs.Registry.spec), _, _, _) -> s.spec_name = name)
        (Lazy.force pipelines)
    in
    (Slif.Stats.of_slif slif).Slif.Stats.bv
  in
  Alcotest.(check bool) "vol < fuzzy < ans < ether (paper ordering)" true
    (bv "vol" < bv "fuzzy" && bv "fuzzy" < bv "ans" && bv "ans" < bv "ether")

let test_every_node_annotated () =
  List.iter
    (fun ((spec : Specs.Registry.spec), _, _, slif) ->
      Array.iter
        (fun (n : Slif.Types.node) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s has cpu32 size" spec.spec_name n.n_name)
            true
            (Slif.Types.size_on n "cpu32" <> None);
          if Slif.Types.is_behavior n then
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s has asic ict" spec.spec_name n.n_name)
              true
              (Slif.Types.ict_on n "asic_gal" <> None))
        slif.Slif.Types.nodes)
    (Lazy.force pipelines)

let test_weights_positive_and_finite () =
  List.iter
    (fun ((spec : Specs.Registry.spec), _, _, slif) ->
      Array.iter
        (fun (n : Slif.Types.node) ->
          List.iter
            (fun (tech, v) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s ict on %s sane" spec.spec_name n.n_name tech)
                true
                (Float.is_finite v && v >= 0.0))
            n.n_ict;
          List.iter
            (fun (tech, v) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s size on %s sane" spec.spec_name n.n_name tech)
                true
                (Float.is_finite v && v > 0.0))
            n.n_size)
        slif.Slif.Types.nodes)
    (Lazy.force pipelines)

let test_channel_invariants () =
  List.iter
    (fun ((spec : Specs.Registry.spec), _, _, slif) ->
      Array.iter
        (fun (c : Slif.Types.channel) ->
          Alcotest.(check bool) (spec.spec_name ^ " freq ordering") true
            (c.c_accfreq_min <= c.c_accfreq +. 1e-9
            && c.c_accfreq <= c.c_accfreq_max +. 1e-9);
          Alcotest.(check bool) (spec.spec_name ^ " bits non-negative") true (c.c_bits >= 0);
          (* Zero bits only for parameterless-procedure control transfers. *)
          Alcotest.(check bool) (spec.spec_name ^ " zero bits only on calls") true
            (c.c_bits > 0 || c.c_kind = Slif.Types.Call);
          Alcotest.(check bool) (spec.spec_name ^ " src is a behavior") true
            (Slif.Types.is_behavior slif.Slif.Types.nodes.(c.c_src)))
        slif.Slif.Types.chans)
    (Lazy.force pipelines)

let test_exectimes_finite_under_seed_partition () =
  List.iter
    (fun ((spec : Specs.Registry.spec), _, _, slif) ->
      let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
      let graph = Slif.Graph.make s in
      let part = Specsyn.Search.seed_partition s in
      let est = Specsyn.Search.estimator graph part in
      Array.iter
        (fun (n : Slif.Types.node) ->
          if Slif.Types.is_process n then begin
            let t = Slif.Estimate.exectime_us est n.n_id in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s exectime" spec.spec_name n.n_name)
              true
              (Float.is_finite t && t > 0.0)
          end)
        s.Slif.Types.nodes)
    (Lazy.force pipelines)

let test_no_call_cycles_in_specs () =
  List.iter
    (fun ((spec : Specs.Registry.spec), _, _, slif) ->
      Alcotest.(check bool) (spec.spec_name ^ " acyclic") false
        (Slif.Graph.has_call_cycle (Slif.Graph.make slif)))
    (Lazy.force pipelines)

let test_estimation_much_faster_than_build () =
  (* The headline claim: per-partition estimation costs orders of magnitude
     less than building/preprocessing the SLIF. *)
  let spec = Specs.Registry.find_exn "ether" in
  let build () =
    let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
    Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem)
  in
  let slif, t_build = Slif_obs.Clock.time build in
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let graph = Slif.Graph.make s in
  let part = Specsyn.Search.seed_partition s in
  let t_est =
    Slif_obs.Clock.time_n 50 (fun () ->
        let est = Specsyn.Search.estimator graph part in
        Array.iter
          (fun (n : Slif.Types.node) ->
            if Slif.Types.is_process n then ignore (Slif.Estimate.exectime_us est n.n_id))
          s.Slif.Types.nodes;
        ignore (Slif.Estimate.size est (Slif.Partition.Cproc 0)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate (%.6fs) at least 3x cheaper than build (%.6fs)" t_est t_build)
    true
    (t_est *. 3.0 < t_build)

let test_asic_speeds_up_datapath_behaviors () =
  (* Figure 3's shape: the convolution-style behaviors run faster as
     custom hardware than as software. *)
  let _, _, _, slif =
    List.find
      (fun ((s : Specs.Registry.spec), _, _, _) -> s.spec_name = "fuzzy")
      (Lazy.force pipelines)
  in
  List.iter
    (fun name ->
      match Slif.Types.node_by_name slif name with
      | Some n ->
          let cpu = Option.value (Slif.Types.ict_on n "cpu32") ~default:0.0 in
          let asic = Option.value (Slif.Types.ict_on n "asic_gal") ~default:infinity in
          Alcotest.(check bool) (name ^ ": asic ict < cpu ict") true (asic < cpu)
      | None -> Alcotest.fail (name ^ " missing"))
    [ "evaluate_rule"; "convolve"; "compute_centroid" ]

let test_dot_export_renders () =
  List.iter
    (fun ((spec : Specs.Registry.spec), _, _, slif) ->
      let dot = Slif.Dot.to_dot ~annotations:true slif in
      Alcotest.(check bool) (spec.spec_name ^ " dot nonempty") true (String.length dot > 100);
      Alcotest.(check bool) (spec.spec_name ^ " digraph header") true
        (String.sub dot 0 7 = "digraph"))
    (Lazy.force pipelines)

let test_dot_with_partition_clusters () =
  let _, _, _, slif = List.hd (Lazy.force pipelines) in
  let s = Specsyn.Alloc.apply slif (Specsyn.Alloc.proc_asic ()) in
  let part = Specsyn.Search.seed_partition s in
  let dot = Slif.Dot.to_dot ~partition:part s in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "has clusters" true (contains "subgraph cluster_" dot)

let test_profile_changes_estimates () =
  (* Profiling is wired through: forcing a branch probability changes the
     computed access frequencies. *)
  let spec = Specs.Registry.find_exn "fuzzy" in
  let build profile =
    let sem = Vhdl.Sem.build (Vhdl.Parser.parse spec.source) in
    Slif.Build.build ~profile sem
  in
  let base = build Flow.Profile.empty in
  let skewed =
    build (Flow.Profile.set_branch Flow.Profile.empty ~behavior:"fuzzymain" ~site:0 ~arm:0 1.0)
  in
  let total_freq (s : Slif.Types.t) =
    Array.fold_left (fun acc (c : Slif.Types.channel) -> acc +. c.c_accfreq) 0.0 s.chans
  in
  Alcotest.(check bool) "frequencies move with the profile" true
    (abs_float (total_freq base -. total_freq skewed) > 1e-6)

let suite =
  [
    Alcotest.test_case "all specs parse and build" `Quick test_all_specs_parse_and_build;
    Alcotest.test_case "BV counts track the paper" `Quick test_bv_counts_track_paper;
    Alcotest.test_case "every node annotated" `Quick test_every_node_annotated;
    Alcotest.test_case "weights positive and finite" `Quick test_weights_positive_and_finite;
    Alcotest.test_case "channel invariants" `Quick test_channel_invariants;
    Alcotest.test_case "process exectimes finite" `Quick test_exectimes_finite_under_seed_partition;
    Alcotest.test_case "benchmark specs are call-acyclic" `Quick test_no_call_cycles_in_specs;
    Alcotest.test_case "estimation cheaper than build" `Slow test_estimation_much_faster_than_build;
    Alcotest.test_case "asic accelerates datapath behaviors" `Quick test_asic_speeds_up_datapath_behaviors;
    Alcotest.test_case "dot export renders" `Quick test_dot_export_renders;
    Alcotest.test_case "dot partition clusters" `Quick test_dot_with_partition_clusters;
    Alcotest.test_case "profile changes estimates" `Quick test_profile_changes_estimates;
  ]
