(* The multi-domain daemon battery: sharded-LRU semantics under
   concurrent domains, the [batch] op's edges, response ordering under
   out-of-order worker completion, slow-reader backpressure, drain on
   shutdown, and — the centerpiece — a socket-level differential soak
   proving the daemon's answers are byte-identical whether 1, 2 or 4
   worker domains execute them. *)

module Server = Slif_server.Server
module Client = Slif_server.Client
module Protocol = Slif_server.Protocol
module Lru = Slif_server.Lru
module Ops = Slif_server.Ops
module Json = Slif_obs.Json

let with_server = Test_server.with_server
let request_exn = Test_server.request_exn

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let spec_names =
  List.filteri (fun i _ -> i < 3)
    (List.map (fun (s : Specs.Registry.spec) -> s.spec_name) Specs.Registry.all)

(* --- Obs.Family ------------------------------------------------------------- *)

let test_family_counters () =
  let f = Slif_obs.Family.create "test.family.battery" ~label:"who" in
  let before = Slif_obs.Family.get f "a" in
  Slif_obs.Family.incr f "a";
  Slif_obs.Family.incr f "a" ~by:2;
  Slif_obs.Family.incr f "b";
  Alcotest.(check int) "series a" (before + 3) (Slif_obs.Family.get f "a");
  Alcotest.(check int) "absent series reads zero" 0
    (Slif_obs.Family.get f "never-fired");
  (* Re-creating the same name returns the same family... *)
  let f' = Slif_obs.Family.create "test.family.battery" ~label:"who" in
  Slif_obs.Family.incr f' "a";
  Alcotest.(check int) "idempotent create shares series" (before + 4)
    (Slif_obs.Family.get f "a");
  (* ...but never with a different label dimension. *)
  match Slif_obs.Family.create "test.family.battery" ~label:"other" with
  | _ -> Alcotest.fail "label mismatch accepted"
  | exception Invalid_argument _ -> ()

let test_family_exact_across_domains () =
  let f = Slif_obs.Family.create "test.family.hammer" ~label:"d" in
  let per_domain = 2_000 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Slif_obs.Family.incr f (string_of_int d);
              Slif_obs.Family.incr f "shared"
            done))
  in
  List.iter Domain.join doms;
  List.iter
    (fun d ->
      Alcotest.(check int)
        (Printf.sprintf "domain %d series exact" d)
        per_domain
        (Slif_obs.Family.get f (string_of_int d)))
    [ 0; 1; 2; 3 ];
  Alcotest.(check int) "contended series exact" (4 * per_domain)
    (Slif_obs.Family.get f "shared")

(* --- Sharded LRU ------------------------------------------------------------ *)

let test_sharded_routing_deterministic () =
  let l = Lru.Sharded.create ~shards:8 ~capacity:16 () in
  let keys = List.init 64 (fun i -> Printf.sprintf "key-%d" i) in
  let first = List.map (Lru.Sharded.shard_of_key l) keys in
  List.iteri
    (fun i k ->
      Alcotest.(check int) "routing stable" (List.nth first i)
        (Lru.Sharded.shard_of_key l k);
      Alcotest.(check bool) "routing in range" true
        (let s = Lru.Sharded.shard_of_key l k in
         s >= 0 && s < 8))
    keys;
  Alcotest.(check int) "shards" 8 (Lru.Sharded.shards l);
  Alcotest.(check int) "capacity rounded over shards" 16 (Lru.Sharded.capacity l)

(* Eviction happens within the key's shard only: filling one shard far
   past its share never evicts another shard's resident entry. *)
let test_sharded_no_cross_shard_eviction () =
  let l = Lru.Sharded.create ~shards:4 ~capacity:4 () in
  (* Find a witness key, then flood keys routed to *other* shards. *)
  let witness = "witness" in
  let ws = Lru.Sharded.shard_of_key l witness in
  Lru.Sharded.add l witness 42;
  let flood =
    List.filter
      (fun k -> Lru.Sharded.shard_of_key l k <> ws)
      (List.init 200 (fun i -> Printf.sprintf "flood-%d" i))
  in
  List.iteri (fun i k -> Lru.Sharded.add l k i) flood;
  Alcotest.(check (option int)) "witness survived other shards' evictions"
    (Some 42) (Lru.Sharded.find l witness);
  (* And the shard never grows past its per-shard share. *)
  List.iter
    (fun (s : Lru.Sharded.shard_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d within capacity" s.sh_index)
        true (s.sh_size <= s.sh_capacity))
    (Lru.Sharded.shard_stats l)

let test_sharded_touch_and_reinsert () =
  (* One shard makes the sharded wrapper's recency identical to the
     plain cache's — touch on hit, refresh on re-add. *)
  let l = Lru.Sharded.create ~shards:1 ~capacity:2 () in
  Lru.Sharded.add l "a" 1;
  Lru.Sharded.add l "b" 2;
  ignore (Lru.Sharded.find l "a");
  Lru.Sharded.add l "c" 3;
  Alcotest.(check (option int)) "b evicted (a touched)" None (Lru.Sharded.find l "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.Sharded.find l "a");
  Lru.Sharded.add l "a" 9;
  Alcotest.(check (option int)) "re-insert replaces" (Some 9) (Lru.Sharded.find l "a");
  Alcotest.(check int) "no duplicate" 2 (Lru.Sharded.size l)

let test_sharded_capacity_one () =
  let l = Lru.Sharded.create ~shards:1 ~capacity:1 () in
  Lru.Sharded.add l "a" 1;
  Lru.Sharded.add l "b" 2;
  Alcotest.(check (option int)) "a evicted" None (Lru.Sharded.find l "a");
  Alcotest.(check (option int)) "b resident" (Some 2) (Lru.Sharded.find l "b");
  Alcotest.(check int) "size one" 1 (Lru.Sharded.size l)

let test_sharded_rejects_bad_args () =
  (match Lru.Sharded.create ~shards:0 ~capacity:4 () with
  | _ -> Alcotest.fail "shards 0 accepted"
  | exception Invalid_argument _ -> ());
  match Lru.Sharded.create ~shards:4 ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

(* Eight domains hammer one cache with private key sets sized under the
   per-shard capacity, so nothing ever evicts: every first find is a
   miss, every subsequent one a hit, and the shard-lock-guarded counters
   must come out exact no matter how the domains interleave. *)
let test_sharded_concurrent_hammer () =
  let domains = 8 and keys_per_domain = 16 and rounds = 50 in
  let l =
    Lru.Sharded.create ~shards:8 ~capacity:(domains * keys_per_domain * 8) ()
  in
  let h0 = Lru.Sharded.hits l and m0 = Lru.Sharded.misses l in
  let worker d () =
    let keys =
      Array.init keys_per_domain (fun k -> Printf.sprintf "d%d-k%d" d k)
    in
    let bad = ref 0 in
    Array.iteri
      (fun i k ->
        (match Lru.Sharded.find l k with Some _ -> incr bad | None -> ());
        Lru.Sharded.add l k (d * 1000 + i))
      keys;
    for _ = 1 to rounds do
      Array.iteri
        (fun i k ->
          match Lru.Sharded.find l k with
          | Some v when v = (d * 1000 + i) -> ()
          | Some _ | None -> incr bad)
        keys
    done;
    !bad
  in
  let doms = List.init domains (fun d -> Domain.spawn (worker d)) in
  let bad = List.fold_left (fun acc d -> acc + Domain.join d) 0 doms in
  Alcotest.(check int) "every lookup saw its own domain's value" 0 bad;
  Alcotest.(check int) "misses exact" (domains * keys_per_domain)
    (Lru.Sharded.misses l - m0);
  Alcotest.(check int) "hits exact"
    (domains * keys_per_domain * rounds)
    (Lru.Sharded.hits l - h0);
  Alcotest.(check int) "nothing evicted" (domains * keys_per_domain)
    (Lru.Sharded.size l)

(* --- Batch edges ------------------------------------------------------------ *)

let estimate_item spec =
  Json.Obj [ ("op", Json.String "estimate"); ("spec", Json.String spec) ]

let batch_line items = Json.to_string (Client.batch_request items)

let results_exn client items =
  match Client.batch client items with
  | Ok results -> results
  | Error msg -> Alcotest.failf "batch failed: %s" msg

let test_batch_empty () =
  with_server (fun _port client ->
      let json = request_exn client
          [ ("op", Json.String "batch"); ("items", Json.List []) ]
      in
      (match Json.member "count" json with
      | Some (Json.Int 0) -> ()
      | _ -> Alcotest.fail "empty batch count not 0");
      match Json.member "results" json with
      | Some (Json.List []) -> ()
      | _ -> Alcotest.fail "empty batch results not []")

let test_batch_order_and_isolation () =
  with_server ~config:(fun c -> { c with Server.workers = 2 }) (fun _port client ->
      let spec = List.hd spec_names in
      let items =
        [
          estimate_item spec;
          Json.Obj [ ("op", Json.String "frobnicate") ];
          Json.Obj [ ("op", Json.String "load"); ("spec", Json.String spec) ];
          Json.Obj [ ("op", Json.String "load"); ("spec", Json.String "no-such-spec") ];
          estimate_item spec;
        ]
      in
      let results = results_exn client items in
      Alcotest.(check int) "five slots answered" 5 (List.length results);
      let ok_of i =
        match Json.member "ok" (List.nth results i) with
        | Some (Json.Bool b) -> b
        | _ -> Alcotest.failf "slot %d has no ok field" i
      in
      Alcotest.(check bool) "slot 0 ok" true (ok_of 0);
      Alcotest.(check bool) "slot 1 malformed isolated" false (ok_of 1);
      Alcotest.(check bool) "slot 2 ok after the bad one" true (ok_of 2);
      Alcotest.(check bool) "slot 3 failing op isolated" false (ok_of 3);
      Alcotest.(check bool) "slot 4 ok" true (ok_of 4);
      (* Order: the estimate slots are identical; the load slot carries
         the design block. *)
      Alcotest.(check bool) "slots 0 and 4 identical" true
        (Json.to_string (List.nth results 0) = Json.to_string (List.nth results 4));
      (match Json.member "error" (List.nth results 1) with
      | Some (Json.String msg) ->
          Alcotest.(check bool) "slot 1 names the op" true
            (contains msg "frobnicate")
      | _ -> Alcotest.fail "slot 1 carries no error");
      (* A batch item failing is not a daemon error line: the wire
         response is still ok:true for the batch itself. *)
      match Json.member "count" (request_exn client
          [ ("op", Json.String "batch"); ("items", Json.List [ estimate_item spec ]) ])
      with
      | Some (Json.Int 1) -> ()
      | _ -> Alcotest.fail "singleton batch count")

let test_batch_rejects_nested_and_control () =
  (* Protocol-level: nested batches and control ops are per-item errors,
     never executed. *)
  match
    Protocol.request_of_line
      (batch_line
         [
           Json.Obj [ ("op", Json.String "batch"); ("items", Json.List []) ];
           Json.Obj [ ("op", Json.String "shutdown") ];
           Json.Obj [ ("op", Json.String "stats") ];
         ])
  with
  | Ok (Protocol.Batch [ Error m1; Error m2; Error m3 ]) ->
      List.iter
        (fun (m, op) ->
          Alcotest.(check bool)
            (op ^ " rejected inside batch")
            true
            (contains m op))
        [ (m1, "batch"); (m2, "shutdown"); (m3, "stats") ]
  | _ -> Alcotest.fail "nested/control items were not isolated errors"

let test_batch_cap () =
  with_server
    ~config:(fun c -> { c with Server.max_batch_items = 3 })
    (fun _port client ->
      let items n = List.init n (fun _ -> estimate_item (List.hd spec_names)) in
      (match Client.batch client (items 3) with
      | Ok results -> Alcotest.(check int) "at the cap" 3 (List.length results)
      | Error msg -> Alcotest.failf "batch at cap failed: %s" msg);
      match Client.batch client (items 4) with
      | Ok _ -> Alcotest.fail "over-cap batch accepted"
      | Error msg ->
          Alcotest.(check bool) "error names the cap" true
            (contains msg "cap"))

let test_batch_differential () =
  with_server ~config:(fun c -> { c with Server.workers = 2 }) (fun _port client ->
      List.iter
        (fun name ->
          let spec = Specs.Registry.find_exn name in
          let expected =
            Ops.estimate_output ~bounds:false (Ops.annotated spec.source)
          in
          List.iter
            (fun r ->
              match Json.member "output" r with
              | Some (Json.String out) ->
                  Alcotest.(check string)
                    (name ^ " batch item matches serial Ops") expected out
              | _ -> Alcotest.fail "batch item carries no output")
            (results_exn client [ estimate_item name; estimate_item name ]))
        spec_names)

(* --- Ordering under out-of-order completion --------------------------------- *)

(* Four workers race a pipelined burst; sequence numbers must keep the
   wire in request order — including a control op landing mid-burst,
   which the acceptor answers at its slot, not when it is parsed. *)
let test_pipeline_order_with_workers () =
  with_server ~config:(fun c -> { c with Server.workers = 4 }) (fun _port client ->
      let spec = List.hd spec_names in
      let est = Json.Obj [ ("op", Json.String "estimate"); ("spec", Json.String spec) ] in
      let lines =
        [
          Json.to_string est;
          Json.to_string est;
          {|{"op":"stats"}|};
          Json.to_string est;
          {|{"op":"health"}|};
          Json.to_string est;
        ]
      in
      let responses = Client.pipeline_raw client lines in
      Alcotest.(check int) "one response per line" (List.length lines)
        (List.length responses);
      let field name r =
        match Json.parse r with
        | Ok json -> Json.member name json
        | Error _ -> None
      in
      let estimates = List.filteri (fun i _ -> List.mem i [ 0; 1; 3; 5 ]) responses in
      (match estimates with
      | first :: rest ->
          List.iter
            (fun r -> Alcotest.(check string) "estimates byte-identical" first r)
            rest
      | [] -> ());
      Alcotest.(check bool) "slot 2 is the stats answer" true
        (field "by_op" (List.nth responses 2) <> None);
      Alcotest.(check bool) "slot 4 is the health answer" true
        (field "inflight" (List.nth responses 4) <> None))

(* --- Differential soak: workers 1 vs 2 vs 4 --------------------------------- *)

(* 64 connections driven from 4 domains pump a deterministic mixed
   workload (load / estimate / partition / batch / malformed) through
   the daemon, pipelined.  The full response transcript — every byte,
   in order — must be identical at every worker count; workers=1 is the
   serial reference, so this is the daemon-level differential against
   serial execution. *)
let soak_lines conn_id rounds =
  let spec i = List.nth spec_names (i mod List.length spec_names) in
  List.concat
    (List.init rounds (fun r ->
         let s = spec (conn_id + r) in
         match (conn_id + r) mod 5 with
         | 0 -> [ Printf.sprintf {|{"op":"load","spec":"%s"}|} s ]
         | 1 -> [ Printf.sprintf {|{"op":"estimate","spec":"%s"}|} s ]
         | 2 -> [ Printf.sprintf {|{"op":"partition","spec":"%s"}|} s ]
         | 3 ->
             [
               batch_line
                 [
                   estimate_item s;
                   Json.Obj [ ("op", Json.String "nope") ];
                   estimate_item (spec (conn_id + r + 1));
                 ];
             ]
         | _ -> [ {|{"op":"frobnicate"}|}; Printf.sprintf {|{"op":"estimate","spec":"%s"}|} s ]))

let soak_transcript ~workers ~conns ~rounds =
  with_server
    ~config:(fun c -> { c with Server.workers; lru_capacity = 8; lru_shards = 4 })
    (fun port _client ->
      let driver_count = 4 in
      let per_driver = conns / driver_count in
      (* Each driver domain pipelines its connections one after another
         while the other three do the same — at least four deep
         pipelines race the worker pool at any moment, and each of the
         [conns] connections carries its whole workload in one write. *)
      let driver d () =
        List.init per_driver (fun i ->
            let conn_id = (d * per_driver) + i in
            let lines = soak_lines conn_id rounds in
            let c = Client.connect_tcp ~timeout_ms:120_000 port in
            let responses = Client.pipeline_raw c lines in
            Client.close c;
            (conn_id, responses))
      in
      let doms = List.init driver_count (fun d -> Domain.spawn (driver d)) in
      let all = List.concat_map Domain.join doms in
      List.sort compare all)

let test_differential_soak () =
  let conns = 64 and rounds = 5 in
  let serial = soak_transcript ~workers:1 ~conns ~rounds in
  Alcotest.(check int) "serial transcript covers every connection" conns
    (List.length serial);
  List.iter
    (fun workers ->
      let parallel = soak_transcript ~workers ~conns ~rounds in
      List.iter2
        (fun (cid, serial_resps) (cid', resps) ->
          Alcotest.(check int) "same connection" cid cid';
          List.iteri
            (fun i (a, b) ->
              if a <> b then
                Alcotest.failf
                  "conn %d response %d differs between workers=1 and workers=%d:\n%s\nvs\n%s"
                  cid i workers a b)
            (List.combine serial_resps resps))
        serial parallel)
    [ 2; 4 ]

(* And the serial reference itself is honest: spot-check it against the
   Ops implementation the CLI prints from. *)
let test_soak_reference_matches_ops () =
  with_server (fun _port client ->
      let name = List.hd spec_names in
      let spec = Specs.Registry.find_exn name in
      let slif = Ops.annotated spec.source in
      let line = Printf.sprintf {|{"op":"estimate","spec":"%s"}|} name in
      let resp = Client.request_raw client line in
      let key = Slif_store.Cache.key ~source:spec.source () in
      let expected =
        Protocol.ok
          [
            ("key", Json.String key);
            ("output", Json.String (Ops.estimate_output ~bounds:false slif));
          ]
      in
      Alcotest.(check string) "wire bytes match Ops + cache key" expected resp)

(* --- Backpressure and limits ------------------------------------------------ *)

let test_backpressure_disconnects_slow_reader () =
  with_server
    ~config:(fun c ->
      { c with Server.workers = 2; max_outq_bytes = 16 * 1024 })
    (fun port client ->
      (* A reader that never reads: pump metrics requests (answers run
         ~10 KB each) without draining a byte.  The kernel's socket
         buffers absorb the first couple of megabytes; past that the
         responses pile up in the daemon's per-connection out-queue
         until the 16 KB cap trips. *)
      let stats_of client =
        match request_exn client [ ("op", Json.String "stats") ] with
        | json -> (
            match Json.member "server" json with
            | Some server -> Json.member "outq_overflows" server
            | None -> None)
      in
      let line = {|{"op":"metrics"}|} in
      let buf = Buffer.create (64 * 1024) in
      for _ = 1 to 64 do
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      done;
      let burst = Buffer.contents buf in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (try
         for _ = 1 to 20 do
           let pos = ref 0 in
           while !pos < String.length burst do
             pos := !pos + Unix.write_substring fd burst !pos (String.length burst - !pos)
           done;
           Unix.sleepf 0.02
         done
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      (* Hold off reading until the daemon has actually hit the cap —
         draining early could keep the out-queue forever under it. *)
      let deadline = Unix.gettimeofday () +. 60.0 in
      let rec await_overflow () =
        match stats_of client with
        | Some (Json.Int n) when n >= 1 -> ()
        | _ ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "out-queue overflow never tripped"
            else begin
              Unix.sleepf 0.05;
              await_overflow ()
            end
      in
      await_overflow ();
      (* Now read what the daemon kept for us: some responses, then the
         slow-reader protocol error, then EOF. *)
      let rbuf = Buffer.create 65536 in
      let chunk = Bytes.create 65536 in
      (try
         let rec drain () =
           match Unix.read fd chunk 0 (Bytes.length chunk) with
           | 0 -> ()
           | n ->
               Buffer.add_subbytes rbuf chunk 0 n;
               drain ()
         in
         drain ()
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let text = Buffer.contents rbuf in
      Alcotest.(check bool) "the slow-reader protocol error arrived" true
        (contains text "slow reader");
      (* The daemon survived and still answers on a healthy connection,
         with the overflow counted. *)
      match stats_of client with
      | Some (Json.Int n) ->
          Alcotest.(check bool) "overflow counted in stats" true (n >= 1)
      | _ -> Alcotest.fail "stats carries no server.outq_overflows")

let test_connection_limit () =
  with_server
    ~config:(fun c -> { c with Server.max_connections = Some 1 })
    (fun port client ->
      (* [with_server]'s own client occupies the single slot. *)
      let extra = Client.connect_tcp ~timeout_ms:10_000 port in
      let line = Client.request_raw extra {|{"op":"stats"}|} in
      Alcotest.(check bool) "refusal names the limit" true
        (contains line "connection limit");
      (match Client.request_raw extra {|{"op":"stats"}|} with
      | _ -> Alcotest.fail "refused connection stayed open"
      | exception (End_of_file | Client.Timeout | Unix.Unix_error _) -> ());
      Client.close extra;
      (* The resident client still works. *)
      ignore (request_exn client [ ("op", Json.String "health") ]))

(* --- Shutdown and signals --------------------------------------------------- *)

let test_shutdown_drains_inflight () =
  with_server ~config:(fun c -> { c with Server.workers = 4 }) (fun _port client ->
      let spec = List.hd spec_names in
      let est = Printf.sprintf {|{"op":"estimate","spec":"%s"}|} spec in
      (* Three requests and the shutdown ride one write; the daemon must
         answer all four, in order, before closing. *)
      let responses =
        Client.pipeline_raw client [ est; est; est; {|{"op":"shutdown"}|} ]
      in
      (match responses with
      | [ a; b; c; bye ] ->
          Alcotest.(check string) "inflight 2 drained identically" a b;
          Alcotest.(check string) "inflight 3 drained identically" a c;
          Alcotest.(check bool) "estimates answered" true
            (contains a {|"ok":true|});
          Alcotest.(check bool) "bye last" true (contains bye {|"bye":true|})
      | _ -> Alcotest.fail "wrong response count");
      (* And the socket reaches EOF: the daemon is gone, not wedged. *)
      match Client.request_raw client {|{"op":"stats"}|} with
      | _ -> Alcotest.fail "daemon answered after shutdown"
      | exception (End_of_file | Unix.Unix_error _) -> ())

let test_sigusr1_under_workers () =
  with_server ~config:(fun c -> { c with Server.workers = 2 }) (fun _port client ->
      ignore (request_exn client [ ("op", Json.String "health") ]);
      (* The dump handler runs on the acceptor between selects; under a
         worker split it must neither crash nor wedge the daemon. *)
      Unix.kill (Unix.getpid ()) Sys.sigusr1;
      Unix.sleepf 0.3;
      ignore (request_exn client [ ("op", Json.String "health") ]);
      ignore (request_exn client [ ("op", Json.String "stats") ]))

(* --- Telemetry surfaces ------------------------------------------------------ *)

let test_stats_and_metrics_expose_workers_and_shards () =
  with_server
    ~config:(fun c -> { c with Server.workers = 2; lru_shards = 4 })
    (fun _port client ->
      let spec = List.hd spec_names in
      for _ = 1 to 4 do
        ignore
          (request_exn client
             [ ("op", Json.String "estimate"); ("spec", Json.String spec) ])
      done;
      ignore (results_exn client [ estimate_item spec ]);
      let stats = request_exn client [ ("op", Json.String "stats") ] in
      let server =
        match Json.member "server" stats with
        | Some s -> s
        | None -> Alcotest.fail "stats has no server block"
      in
      (match Json.member "workers" server with
      | Some (Json.Int 2) -> ()
      | _ -> Alcotest.fail "server.workers not 2");
      (match Json.member "per_worker" server with
      | Some (Json.Obj series) ->
          Alcotest.(check int) "one series per worker" 2 (List.length series)
      | _ -> Alcotest.fail "server.per_worker missing");
      (match Json.member "lru" stats with
      | Some lru -> (
          (match Json.member "shards" lru with
          | Some (Json.List shards) ->
              Alcotest.(check int) "one stat per shard" 4 (List.length shards)
          | _ -> Alcotest.fail "lru.shards missing");
          match (Json.member "hits" lru, Json.member "misses" lru) with
          | Some (Json.Int h), Some (Json.Int m) ->
              Alcotest.(check bool) "hits counted" true (h >= 3);
              Alcotest.(check bool) "misses counted" true (m >= 1)
          | _ -> Alcotest.fail "lru hit/miss totals missing")
      | None -> Alcotest.fail "stats has no lru block");
      let metrics =
        match
          Protocol.output_field (request_exn client [ ("op", Json.String "metrics") ])
        with
        | Some s -> s
        | None -> Alcotest.fail "metrics has no output"
      in
      List.iter
        (fun family ->
          Alcotest.(check bool) (family ^ " exported") true
            (contains metrics family))
        [
          "slif_server_workers";
          "slif_server_queue_depth";
          "slif_server_lru_shard_hits_total";
          "slif_server_worker_requests_total";
          "slif_server_batch_items_total";
        ])

let suite =
  [
    Alcotest.test_case "family counters" `Quick test_family_counters;
    Alcotest.test_case "family exact across domains" `Slow
      test_family_exact_across_domains;
    Alcotest.test_case "sharded lru: deterministic routing" `Quick
      test_sharded_routing_deterministic;
    Alcotest.test_case "sharded lru: no cross-shard eviction" `Quick
      test_sharded_no_cross_shard_eviction;
    Alcotest.test_case "sharded lru: touch and re-insert" `Quick
      test_sharded_touch_and_reinsert;
    Alcotest.test_case "sharded lru: capacity one" `Quick test_sharded_capacity_one;
    Alcotest.test_case "sharded lru: rejects bad args" `Quick
      test_sharded_rejects_bad_args;
    Alcotest.test_case "sharded lru: 8-domain hammer, exact counters" `Slow
      test_sharded_concurrent_hammer;
    Alcotest.test_case "batch: empty" `Slow test_batch_empty;
    Alcotest.test_case "batch: order and per-item isolation" `Slow
      test_batch_order_and_isolation;
    Alcotest.test_case "batch: nested and control items rejected" `Quick
      test_batch_rejects_nested_and_control;
    Alcotest.test_case "batch: item cap" `Slow test_batch_cap;
    Alcotest.test_case "batch: differential vs serial Ops" `Slow
      test_batch_differential;
    Alcotest.test_case "pipeline order under 4 workers" `Slow
      test_pipeline_order_with_workers;
    Alcotest.test_case "differential soak: workers 1/2/4 byte-identical" `Slow
      test_differential_soak;
    Alcotest.test_case "soak reference matches Ops bytes" `Slow
      test_soak_reference_matches_ops;
    Alcotest.test_case "backpressure disconnects slow readers" `Slow
      test_backpressure_disconnects_slow_reader;
    Alcotest.test_case "connection limit refuses extras" `Slow test_connection_limit;
    Alcotest.test_case "shutdown drains in-flight requests" `Slow
      test_shutdown_drains_inflight;
    Alcotest.test_case "SIGUSR1 dump under worker split" `Slow
      test_sigusr1_under_workers;
    Alcotest.test_case "stats/metrics expose worker and shard families" `Slow
      test_stats_and_metrics_expose_workers_and_shards;
  ]
