(* Slif_obs: spans, counters, histograms, registry gating, exporters. *)

module Obs = Slif_obs

(* Every test runs on a fresh registry and leaves it disabled so the
   other suites (which run with the registry off) are unaffected. *)
let with_fresh f () =
  Obs.Registry.reset ();
  Obs.Registry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Registry.disable ();
      Obs.Registry.reset ())
    f

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_ok what text =
  match Obs.Json.parse text with
  | Ok json -> json
  | Error msg -> Alcotest.failf "%s: invalid JSON: %s" what msg

(* --- Spans --------------------------------------------------------------- *)

let test_span_nesting () =
  (with_fresh @@ fun () ->
   let result =
     Obs.Span.with_ "outer" (fun () ->
         Obs.Span.with_ "inner1" (fun () -> ());
         Obs.Span.with_ "inner2" (fun () -> ());
         42)
   in
   Alcotest.(check int) "with_ returns the body's value" 42 result;
   let events = Obs.Trace.events () in
   Alcotest.(check (list string))
     "events sorted by start time" [ "outer"; "inner1"; "inner2" ]
     (List.map (fun (e : Obs.Trace.event) -> e.name) events);
   let find name = List.find (fun (e : Obs.Trace.event) -> e.name = name) events in
   let outer = find "outer" and inner1 = find "inner1" and inner2 = find "inner2" in
   Alcotest.(check int) "outer at depth 0" 0 outer.depth;
   Alcotest.(check int) "inner1 nested" 1 inner1.depth;
   Alcotest.(check int) "inner2 nested" 1 inner2.depth;
   Alcotest.(check bool) "children start after the parent" true
     (inner1.ts_us >= outer.ts_us && inner2.ts_us >= inner1.ts_us);
   Alcotest.(check bool) "parent spans its children" true
     (outer.dur_us >= inner1.dur_us +. inner2.dur_us))
    ()

let test_span_exception () =
  (with_fresh @@ fun () ->
   (try Obs.Span.with_ "failing" (fun () -> failwith "boom") with Failure _ -> ());
   Alcotest.(check int) "span recorded despite the raise" 1
     (List.length (Obs.Trace.events ()));
   Alcotest.(check int) "depth restored" 0 (Obs.Registry.depth ()))
    ()

let test_span_histogram () =
  (with_fresh @@ fun () ->
   Obs.Span.with_ "phase" (fun () -> ());
   Obs.Span.with_ "phase" (fun () -> ());
   match Obs.Histogram.summary "span.phase" with
   | None -> Alcotest.fail "span should feed its duration histogram"
   | Some s ->
       Alcotest.(check int) "two observations" 2 s.count;
       Alcotest.(check bool) "durations are non-negative" true (s.min >= 0.0))
    ()

(* --- Counters ------------------------------------------------------------ *)

let test_counter_aggregation () =
  (with_fresh @@ fun () ->
   (* Two phases feeding the same counters accumulate, as two estimator
      instances do for estimate.*. *)
   Obs.Span.with_ "phase1" (fun () ->
       Obs.Counter.incr "work.items";
       Obs.Counter.incr ~by:4 "work.items");
   Obs.Span.with_ "phase2" (fun () -> Obs.Counter.add "work.items" 5);
   Obs.Counter.incr "other";
   Alcotest.(check int) "aggregated across phases" 10 (Obs.Counter.get "work.items");
   Alcotest.(check int) "unknown counter reads zero" 0 (Obs.Counter.get "absent");
   Alcotest.(check (list (pair string int)))
     "snapshot sorted by name"
     [ ("other", 1); ("work.items", 10) ]
     (List.filter
        (fun (name, _) -> name = "other" || name = "work.items")
        (Obs.Counter.snapshot ())))
    ()

let test_histogram_stats () =
  (with_fresh @@ fun () ->
   List.iter (Obs.Histogram.observe "lat") [ 2.0; 4.0; 6.0 ];
   match Obs.Histogram.summary "lat" with
   | None -> Alcotest.fail "histogram missing"
   | Some s ->
       Alcotest.(check int) "count" 3 s.count;
       Alcotest.(check (float 1e-9)) "sum" 12.0 s.sum;
       Alcotest.(check (float 1e-9)) "min" 2.0 s.min;
       Alcotest.(check (float 1e-9)) "max" 6.0 s.max;
       Alcotest.(check (float 1e-9)) "mean" 4.0 s.mean)
    ()

(* --- Disabled mode ------------------------------------------------------- *)

let test_disabled_noop () =
  Obs.Registry.reset ();
  Obs.Registry.disable ();
  let result = Obs.Span.with_ "ghost" (fun () -> Obs.Counter.incr "ghost.count"; 7) in
  Alcotest.(check int) "with_ still runs the body" 7 result;
  Alcotest.(check int) "no counter recorded" 0 (Obs.Counter.get "ghost.count");
  Alcotest.(check int) "no span recorded" 0 (List.length (Obs.Trace.events ()));
  Alcotest.(check bool) "no histogram recorded" true
    (Obs.Histogram.summary "span.ghost" = None);
  (match try Obs.Span.with_ "ghost2" (fun () -> raise Exit) with Exit -> () with
  | () -> ());
  Alcotest.(check int) "exceptions pass through untouched" 0
    (List.length (Obs.Trace.events ()))

let test_instrumented_paths_silent_when_disabled () =
  Obs.Registry.reset ();
  Obs.Registry.disable ();
  let slif = Lazy.force Helpers.tiny_slif in
  ignore (Slif.Stats.of_slif slif);
  Alcotest.(check int) "estimate counters silent" 0
    (Obs.Counter.get "estimate.memo_miss");
  Alcotest.(check int) "build counters silent" 0 (Obs.Counter.get "build.nodes")

(* --- Exporters ----------------------------------------------------------- *)

let test_trace_export_valid_json () =
  (with_fresh @@ fun () ->
   Obs.Span.with_ "outer" ~args:[ ("spec", "tiny \"quoted\"\n") ] (fun () ->
       Obs.Span.with_ "inner" (fun () -> ()));
   let path = Filename.temp_file "slif_obs" ".trace.json" in
   Obs.Trace.write_file path;
   let json = parse_ok "trace" (read_file path) in
   Sys.remove path;
   match Obs.Json.member "traceEvents" json with
   | Some (Obs.Json.List events) ->
       (* Metadata event plus the two spans. *)
       Alcotest.(check int) "event count" 3 (List.length events);
       List.iter
         (fun ev ->
           Alcotest.(check bool) "every event has a name and ph" true
             (Obs.Json.member "name" ev <> None && Obs.Json.member "ph" ev <> None))
         events
   | _ -> Alcotest.fail "traceEvents missing or not a list")
    ()

let test_metrics_export_valid_json () =
  (with_fresh @@ fun () ->
   Obs.Counter.incr ~by:3 "estimate.memo_hit";
   Obs.Histogram.observe "lat" 1.5;
   let path = Filename.temp_file "slif_obs" ".metrics.json" in
   Obs.Metrics.write_file path;
   let json = parse_ok "metrics" (read_file path) in
   Sys.remove path;
   (match Obs.Json.member "counters" json with
   | Some counters ->
       Alcotest.(check bool) "counter exported" true
         (Obs.Json.member "estimate.memo_hit" counters = Some (Obs.Json.Int 3))
   | None -> Alcotest.fail "counters object missing");
   match Obs.Json.member "histograms" json with
   | Some hists -> (
       match Obs.Json.member "lat" hists with
       | Some h ->
           Alcotest.(check bool) "histogram has a count field" true
             (Obs.Json.member "count" h = Some (Obs.Json.Int 1))
       | None -> Alcotest.fail "lat histogram missing")
   | None -> Alcotest.fail "histograms object missing")
    ()

let test_metrics_jsonl () =
  (with_fresh @@ fun () ->
   Obs.Counter.incr "a";
   Obs.Histogram.observe "b" 2.0;
   let path = Filename.temp_file "slif_obs" ".metrics.jsonl" in
   Obs.Metrics.write_jsonl path;
   let lines =
     read_file path |> String.split_on_char '\n'
     |> List.filter (fun l -> String.trim l <> "")
   in
   Sys.remove path;
   Alcotest.(check int) "one line per metric" 2 (List.length lines);
   List.iter (fun line -> ignore (parse_ok "jsonl line" line)) lines)
    ()

(* --- JSON round-trip ----------------------------------------------------- *)

let test_json_roundtrip () =
  let value =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a\"b\\c\nd\te\r\012 \001");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.25);
        ("big", Obs.Json.Float 1.23456789e18);
        ("t", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ]);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string value) with
  | Ok round -> Alcotest.(check bool) "round-trips" true (round = value)
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg

let test_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Obs.Json.parse text with
      | Ok _ -> Alcotest.failf "parser accepted %S" text
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_nonfinite_floats_print_null () =
  let text = Obs.Json.to_string (Obs.Json.List [ Obs.Json.Float nan; Obs.Json.Float infinity ]) in
  Alcotest.(check string) "nan/inf become null" "[null,null]" text

(* --- Clock --------------------------------------------------------------- *)

let test_clock_monotonic () =
  let t0 = Obs.Clock.now_ns () in
  let t1 = Obs.Clock.now_ns () in
  Alcotest.(check bool) "clock never goes backwards" true (Int64.compare t1 t0 >= 0);
  let (), s = Obs.Clock.time (fun () -> ignore (Sys.opaque_identity (List.init 100 Fun.id))) in
  Alcotest.(check bool) "elapsed seconds non-negative" true (s >= 0.0)

let test_clock_time_helpers () =
  let x, s = Obs.Clock.time (fun () -> 3 + 4) in
  Alcotest.(check int) "result threaded through" 7 x;
  Alcotest.(check bool) "duration non-negative" true (s >= 0.0);
  let avg = Obs.Clock.time_n 3 (fun () -> ()) in
  Alcotest.(check bool) "average non-negative" true (avg >= 0.0);
  Alcotest.check_raises "time_n rejects n <= 0" (Invalid_argument "Clock.time_n")
    (fun () -> ignore (Obs.Clock.time_n 0 (fun () -> ())))

(* --- Instrumented pipeline ----------------------------------------------- *)

let test_pipeline_counters_fire () =
  (with_fresh @@ fun () ->
   let sem = Vhdl.Sem.build (Vhdl.Parser.parse Helpers.tiny_source) in
   let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
   Alcotest.(check bool) "build.nodes counted" true (Obs.Counter.get "build.nodes" > 0);
   Alcotest.(check bool) "parse span recorded" true
     (List.exists
        (fun (e : Obs.Trace.event) -> e.name = "vhdl.parse")
        (Obs.Trace.events ()));
   let s = Helpers.proc_asic_components slif in
   let graph = Slif.Graph.make s in
   let part = Specsyn.Search.seed_partition s in
   let est = Specsyn.Search.estimator graph part in
   Array.iter
     (fun (n : Slif.Types.node) ->
       if Slif.Types.is_process n then ignore (Slif.Estimate.exectime_us est n.n_id))
     s.Slif.Types.nodes;
   Alcotest.(check bool) "memo misses counted" true
     (Obs.Counter.get "estimate.memo_miss" > 0))
    ()

let test_event_cap () =
  (with_fresh @@ fun () ->
   Obs.Registry.set_max_events 3;
   Fun.protect
     ~finally:(fun () -> Obs.Registry.set_max_events 200_000)
     (fun () ->
       for _ = 1 to 5 do
         Obs.Span.with_ "spam" (fun () -> ())
       done;
       Alcotest.(check int) "buffer capped" 3 (List.length (Obs.Trace.events ()));
       Alcotest.(check int) "drops counted" 2 (Obs.Registry.dropped_events ())))
    ()

(* --- Quantiles ------------------------------------------------------------ *)

(* Log buckets with base 1.15 put every estimate within ~7% of the true
   value; 10% is a comfortable test margin. *)
let check_close name expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f within 10%% of %.2f" name got expected)
    true
    (Float.abs (got -. expected) <= 0.10 *. expected)

let test_quantile_estimation () =
  (with_fresh @@ fun () ->
   for v = 1 to 1000 do
     Obs.Histogram.observe "lat" (float_of_int v)
   done;
   match Obs.Histogram.quantiles "lat" with
   | None -> Alcotest.fail "quantiles missing"
   | Some q ->
       Alcotest.(check int) "count" 1000 q.q_count;
       check_close "p50" 500.0 q.q_p50;
       check_close "p90" 900.0 q.q_p90;
       check_close "p99" 990.0 q.q_p99;
       Alcotest.(check (float 1e-9)) "max is exact" 1000.0 q.q_max;
       Alcotest.(check bool) "estimates never exceed the true max" true
         (q.q_p50 <= q.q_max && q.q_p90 <= q.q_max && q.q_p99 <= q.q_max))
    ()

let test_quantiles_clamped_to_max () =
  (with_fresh @@ fun () ->
   (* A single observation: every quantile must equal it exactly, not a
      bucket midpoint above it. *)
   Obs.Histogram.observe "one" 123.0;
   match Obs.Histogram.quantiles "one" with
   | None -> Alcotest.fail "quantiles missing"
   | Some q ->
       Alcotest.(check (float 1e-9)) "p50 clamped" 123.0 q.q_p50;
       Alcotest.(check (float 1e-9)) "p99 clamped" 123.0 q.q_p99)
    ()

let test_snapshot_full_pairs () =
  (with_fresh @@ fun () ->
   List.iter (Obs.Histogram.observe "a") [ 1.0; 2.0; 3.0 ];
   Obs.Histogram.observe "b" 10.0;
   let full = Obs.Histogram.snapshot_full () in
   Alcotest.(check (list string)) "sorted names" [ "a"; "b" ]
     (List.map (fun (n, _, _) -> n) full);
   List.iter
     (fun (name, (s : Obs.Histogram.summary), (q : Obs.Histogram.quantiles)) ->
       Alcotest.(check int) (name ^ ": summary and quantiles agree on count") s.count
         q.q_count;
       Alcotest.(check (float 1e-9)) (name ^ ": same max") s.max q.q_max)
     full)
    ()

let test_standalone_histogram () =
  let h = Obs.Histogram.create () in
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (Obs.Histogram.quantile h 0.5));
  for v = 1 to 100 do
    Obs.Histogram.record h (float_of_int v)
  done;
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 5050.0 (Obs.Histogram.sum h);
  check_close "standalone p50" 50.0 (Obs.Histogram.quantile h 0.5);
  let q = Obs.Histogram.quantile_summary h in
  Alcotest.(check (float 1e-9)) "exact max" 100.0 q.q_max;
  (* Works with the registry disabled — it is daemon telemetry, not a
     registry probe. *)
  Alcotest.(check bool) "registry off" false (Obs.Registry.on ())

let test_window_exact_and_wraparound () =
  let w = Obs.Histogram.window ~capacity:4 () in
  Alcotest.(check bool) "empty window has no quantiles" true
    (Obs.Histogram.window_quantiles w = None);
  List.iter (Obs.Histogram.window_record w) [ 10.0; 20.0; 30.0; 40.0 ];
  (match Obs.Histogram.window_quantiles w with
  | Some q ->
      Alcotest.(check int) "full window count" 4 q.q_count;
      Alcotest.(check (float 1e-9)) "exact max" 40.0 q.q_max
  | None -> Alcotest.fail "full window has quantiles");
  (* Two more observations overwrite the two oldest. *)
  List.iter (Obs.Histogram.window_record w) [ 50.0; 60.0 ];
  (match Obs.Histogram.window_quantiles w with
  | Some q ->
      Alcotest.(check int) "count stays at capacity" 4 q.q_count;
      Alcotest.(check (float 1e-9)) "old max displaced" 60.0 q.q_max;
      (* Remaining values are 30,40,50,60: the exact p50 must sit inside. *)
      Alcotest.(check bool) "p50 from survivors" true (q.q_p50 >= 30.0 && q.q_p50 <= 60.0)
  | None -> Alcotest.fail "window lost its contents");
  Alcotest.(check int) "size capped" 4 (Obs.Histogram.window_size w);
  match Obs.Histogram.window ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

(* --- Event log ------------------------------------------------------------ *)

let read_jsonl path =
  read_file path |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (parse_ok "event line")

let with_event_log f =
  let path = Filename.temp_file "slif_obs" ".events.jsonl" in
  Obs.Event.open_log path;
  Fun.protect
    ~finally:(fun () ->
      Obs.Event.close_log ();
      Obs.Event.set_level Obs.Event.Info;
      Obs.Event.set_sample 1;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_event_emit_and_levels () =
  with_event_log (fun path ->
      Obs.Event.set_level Obs.Event.Info;
      Obs.Event.emit ~level:Obs.Event.Debug "below.threshold";
      Obs.Event.emit "plain" ~fields:[ ("k", Obs.Json.Int 7) ];
      Obs.Event.emit ~level:Obs.Event.Error "bad" ;
      Obs.Event.close_log ();
      let events = read_jsonl path in
      Alcotest.(check int) "debug filtered out" 2 (List.length events);
      let first = List.hd events in
      Alcotest.(check bool) "has timestamp" true (Obs.Json.member "ts_us" first <> None);
      Alcotest.(check bool) "level recorded" true
        (Obs.Json.member "level" first = Some (Obs.Json.String "info"));
      Alcotest.(check bool) "name recorded" true
        (Obs.Json.member "event" first = Some (Obs.Json.String "plain"));
      Alcotest.(check bool) "user field kept" true
        (Obs.Json.member "k" first = Some (Obs.Json.Int 7));
      Alcotest.(check bool) "no trace outside a request" true
        (Obs.Json.member "trace_id" first = None))

let test_event_sampling () =
  with_event_log (fun path ->
      Obs.Event.set_sample 3;
      for _ = 1 to 9 do
        Obs.Event.emit "tick"
      done;
      (* Warnings bypass sampling. *)
      Obs.Event.emit ~level:Obs.Event.Warn "always";
      Obs.Event.close_log ();
      let events = read_jsonl path in
      Alcotest.(check int) "1-in-3 of 9 plus the warning" 4 (List.length events);
      Alcotest.(check int) "emitted counter" 4 (Obs.Event.emitted ());
      Alcotest.(check int) "sampled-out counter" 6 (Obs.Event.sampled_out ());
      match Obs.Event.set_sample 0 with
      | () -> Alcotest.fail "sample 0 accepted"
      | exception Invalid_argument _ -> ())

let test_event_trace_id () =
  with_event_log (fun path ->
      Obs.Registry.with_trace "t-42" (fun () -> Obs.Event.emit "inside");
      Obs.Event.emit "outside";
      Obs.Event.close_log ();
      match read_jsonl path with
      | [ inside; outside ] ->
          Alcotest.(check bool) "trace id attached" true
            (Obs.Json.member "trace_id" inside = Some (Obs.Json.String "t-42"));
          Alcotest.(check bool) "cleared after with_trace" true
            (Obs.Json.member "trace_id" outside = None)
      | events -> Alcotest.failf "expected 2 events, got %d" (List.length events))

let test_event_disabled_is_noop () =
  (* No sink: emit must be free and counters must not move. *)
  Obs.Event.close_log ();
  let before = Obs.Event.emitted () in
  Obs.Event.emit "nobody.listening";
  Alcotest.(check int) "nothing recorded" before (Obs.Event.emitted ())

(* --- Span trace ids -------------------------------------------------------- *)

let test_span_trace_id_arg () =
  (with_fresh @@ fun () ->
   Obs.Registry.with_trace "req-7" (fun () -> Obs.Span.with_ "work" (fun () -> ()));
   Obs.Span.with_ "untraced" (fun () -> ());
   let find name = List.find (fun (e : Obs.Trace.event) -> e.name = name) (Obs.Trace.events ()) in
   Alcotest.(check (option string)) "span carries the ambient trace id" (Some "req-7")
     (List.assoc_opt "trace_id" (find "work").args);
   Alcotest.(check (option string)) "no ambient id, no arg" None
     (List.assoc_opt "trace_id" (find "untraced").args))
    ()

(* --- Prometheus rendering --------------------------------------------------- *)

let test_prometheus_rendering () =
  let module P = Obs.Prometheus in
  let q =
    { Obs.Histogram.q_count = 3; q_p50 = 10.0; q_p90 = 20.0; q_p99 = 30.0; q_max = 31.0 }
  in
  let text =
    P.to_string
      [
        P.Counter
          {
            name = P.sanitize_name "server.request.load";
            help = "Requests.";
            samples = [ ([ ("op", "a\"b\\c\nd") ], 5.0) ];
          };
        P.Gauge { name = "up"; help = "Up."; samples = [ ([], 1.0) ] };
        P.Summary
          { name = "lat_us"; help = "Latency."; series = [ ([ ("op", "x") ], q, 60.0) ] };
      ]
  in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "renders %s" (String.escaped needle)) true (go 0)
  in
  contains "# HELP server_request_load Requests.\n";
  contains "# TYPE server_request_load counter\n";
  (* Label values escape backslash, quote and newline. *)
  contains {|server_request_load{op="a\"b\\c\nd"} 5|};
  contains "# TYPE up gauge\n";
  contains "up 1\n";
  contains "# TYPE lat_us summary\n";
  contains {|lat_us{op="x",quantile="0.5"} 10|};
  contains {|lat_us{op="x",quantile="0.99"} 30|};
  contains {|lat_us_sum{op="x"} 60|};
  contains {|lat_us_count{op="x"} 3|};
  Alcotest.(check string) "leading digit escaped" "_fast" (P.sanitize_name "2fast")

(* Hostile label values — quotes, backslashes, newlines, and their
   combinations — must survive exposition unambiguously, in every label
   position, with label keys sanitized like metric names. *)
let test_prometheus_label_escaping () =
  let module P = Obs.Prometheus in
  let text =
    P.to_string
      [
        P.Counter
          {
            name = "slif_worker_requests";
            help = "Per-worker requests.";
            samples =
              [
                ([ ("worker", "0"); ("note", {|say "hi"|}) ], 1.0);
                ([ ("path", {|C:\spec\new|}) ], 2.0);
                ([ ("msg", "line1\nline2"); ("tail", "\\\"\n") ], 3.0);
                ([ ("bad-key!", "v") ], 4.0);
              ];
          };
      ]
  in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "renders %s" (String.escaped needle)) true (go 0)
  in
  contains {|slif_worker_requests{worker="0",note="say \"hi\""} 1|};
  contains {|slif_worker_requests{path="C:\\spec\\new"} 2|};
  contains {|slif_worker_requests{msg="line1\nline2",tail="\\\"\n"} 3|};
  (* Label keys pass through the metric-name sanitizer. *)
  contains {|slif_worker_requests{bad_key_="v"} 4|};
  (* A raw newline inside a label value would split the sample line;
     every emitted line must look like a header or a complete sample. *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" then
           Alcotest.(check bool)
             (Printf.sprintf "line %S is header or sample" line)
             true
             (String.length line >= 1
             && (line.[0] = '#' || String.contains line ' ')))

(* Families with nothing to report render their headers and no samples —
   a scraper sees the metric exists rather than a parse error. *)
let test_prometheus_empty_families () =
  let module P = Obs.Prometheus in
  let text =
    P.to_string
      [
        P.Counter { name = "quiet_total"; help = "Nothing yet."; samples = [] };
        P.Summary { name = "quiet_lat"; help = "No requests."; series = [] };
      ]
  in
  Alcotest.(check string)
    "headers only"
    "# HELP quiet_total Nothing yet.\n# TYPE quiet_total counter\n# HELP quiet_lat No \
     requests.\n# TYPE quiet_lat summary\n"
    text;
  Alcotest.(check string) "no families, empty document" "" (P.to_string [])

(* Reserved characters anywhere in a metric name map to '_'; legal
   names pass through untouched. *)
let test_prometheus_reserved_names () =
  let module P = Obs.Prometheus in
  Alcotest.(check string) "dots" "server_lru_hit" (P.sanitize_name "server.lru.hit");
  Alcotest.(check string) "spaces and percent" "hit_rate_" (P.sanitize_name "hit rate%");
  Alcotest.(check string) "braces and quotes" "a_b_c_d_" (P.sanitize_name "a{b\"c}d=");
  Alcotest.(check string)
    "colons survive" "rule:latency_p99"
    (P.sanitize_name "rule:latency_p99");
  Alcotest.(check string) "digits after the first" "x2_fast" (P.sanitize_name "x2.fast");
  Alcotest.(check string) "empty name" "_" (P.sanitize_name "");
  let text =
    P.to_string
      [ P.Counter { name = "bench.a10 p99%"; help = "h"; samples = [ ([], 1.0) ] } ]
  in
  Alcotest.(check bool) "sample uses the sanitized name" true
    (String.length text > 0
    && String.split_on_char '\n' text
       |> List.exists (fun l -> l = "bench_a10_p99_ 1"))

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
    Alcotest.test_case "span feeds duration histogram" `Quick test_span_histogram;
    Alcotest.test_case "counter aggregation across phases" `Quick test_counter_aggregation;
    Alcotest.test_case "histogram statistics" `Quick test_histogram_stats;
    Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "instrumented paths silent when disabled" `Quick
      test_instrumented_paths_silent_when_disabled;
    Alcotest.test_case "trace export is valid JSON" `Quick test_trace_export_valid_json;
    Alcotest.test_case "metrics export is valid JSON" `Quick test_metrics_export_valid_json;
    Alcotest.test_case "metrics JSONL export" `Quick test_metrics_jsonl;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "non-finite floats print as null" `Quick
      test_nonfinite_floats_print_null;
    Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
    Alcotest.test_case "clock time helpers" `Quick test_clock_time_helpers;
    Alcotest.test_case "pipeline counters fire when enabled" `Quick
      test_pipeline_counters_fire;
    Alcotest.test_case "span buffer cap" `Quick test_event_cap;
    Alcotest.test_case "quantile estimation accuracy" `Quick test_quantile_estimation;
    Alcotest.test_case "quantiles clamp to the true max" `Quick
      test_quantiles_clamped_to_max;
    Alcotest.test_case "snapshot_full pairs summaries and quantiles" `Quick
      test_snapshot_full_pairs;
    Alcotest.test_case "standalone histogram" `Quick test_standalone_histogram;
    Alcotest.test_case "window: exact quantiles and wraparound" `Quick
      test_window_exact_and_wraparound;
    Alcotest.test_case "event log: emit and level filter" `Quick test_event_emit_and_levels;
    Alcotest.test_case "event log: deterministic sampling" `Quick test_event_sampling;
    Alcotest.test_case "event log: trace ids" `Quick test_event_trace_id;
    Alcotest.test_case "event log: no sink, no work" `Quick test_event_disabled_is_noop;
    Alcotest.test_case "spans carry the ambient trace id" `Quick test_span_trace_id_arg;
    Alcotest.test_case "prometheus exposition rendering" `Quick test_prometheus_rendering;
    Alcotest.test_case "prometheus label escaping edge cases" `Quick
      test_prometheus_label_escaping;
    Alcotest.test_case "prometheus empty families" `Quick test_prometheus_empty_families;
    Alcotest.test_case "prometheus reserved-char names" `Quick
      test_prometheus_reserved_names;
  ]
