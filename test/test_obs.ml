(* Slif_obs: spans, counters, histograms, registry gating, exporters. *)

module Obs = Slif_obs

(* Every test runs on a fresh registry and leaves it disabled so the
   other suites (which run with the registry off) are unaffected. *)
let with_fresh f () =
  Obs.Registry.reset ();
  Obs.Registry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Registry.disable ();
      Obs.Registry.reset ())
    f

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_ok what text =
  match Obs.Json.parse text with
  | Ok json -> json
  | Error msg -> Alcotest.failf "%s: invalid JSON: %s" what msg

(* --- Spans --------------------------------------------------------------- *)

let test_span_nesting () =
  (with_fresh @@ fun () ->
   let result =
     Obs.Span.with_ "outer" (fun () ->
         Obs.Span.with_ "inner1" (fun () -> ());
         Obs.Span.with_ "inner2" (fun () -> ());
         42)
   in
   Alcotest.(check int) "with_ returns the body's value" 42 result;
   let events = Obs.Trace.events () in
   Alcotest.(check (list string))
     "events sorted by start time" [ "outer"; "inner1"; "inner2" ]
     (List.map (fun (e : Obs.Trace.event) -> e.name) events);
   let find name = List.find (fun (e : Obs.Trace.event) -> e.name = name) events in
   let outer = find "outer" and inner1 = find "inner1" and inner2 = find "inner2" in
   Alcotest.(check int) "outer at depth 0" 0 outer.depth;
   Alcotest.(check int) "inner1 nested" 1 inner1.depth;
   Alcotest.(check int) "inner2 nested" 1 inner2.depth;
   Alcotest.(check bool) "children start after the parent" true
     (inner1.ts_us >= outer.ts_us && inner2.ts_us >= inner1.ts_us);
   Alcotest.(check bool) "parent spans its children" true
     (outer.dur_us >= inner1.dur_us +. inner2.dur_us))
    ()

let test_span_exception () =
  (with_fresh @@ fun () ->
   (try Obs.Span.with_ "failing" (fun () -> failwith "boom") with Failure _ -> ());
   Alcotest.(check int) "span recorded despite the raise" 1
     (List.length (Obs.Trace.events ()));
   Alcotest.(check int) "depth restored" 0 (Obs.Registry.depth ()))
    ()

let test_span_histogram () =
  (with_fresh @@ fun () ->
   Obs.Span.with_ "phase" (fun () -> ());
   Obs.Span.with_ "phase" (fun () -> ());
   match Obs.Histogram.summary "span.phase" with
   | None -> Alcotest.fail "span should feed its duration histogram"
   | Some s ->
       Alcotest.(check int) "two observations" 2 s.count;
       Alcotest.(check bool) "durations are non-negative" true (s.min >= 0.0))
    ()

(* --- Counters ------------------------------------------------------------ *)

let test_counter_aggregation () =
  (with_fresh @@ fun () ->
   (* Two phases feeding the same counters accumulate, as two estimator
      instances do for estimate.*. *)
   Obs.Span.with_ "phase1" (fun () ->
       Obs.Counter.incr "work.items";
       Obs.Counter.incr ~by:4 "work.items");
   Obs.Span.with_ "phase2" (fun () -> Obs.Counter.add "work.items" 5);
   Obs.Counter.incr "other";
   Alcotest.(check int) "aggregated across phases" 10 (Obs.Counter.get "work.items");
   Alcotest.(check int) "unknown counter reads zero" 0 (Obs.Counter.get "absent");
   Alcotest.(check (list (pair string int)))
     "snapshot sorted by name"
     [ ("other", 1); ("work.items", 10) ]
     (List.filter
        (fun (name, _) -> name = "other" || name = "work.items")
        (Obs.Counter.snapshot ())))
    ()

let test_histogram_stats () =
  (with_fresh @@ fun () ->
   List.iter (Obs.Histogram.observe "lat") [ 2.0; 4.0; 6.0 ];
   match Obs.Histogram.summary "lat" with
   | None -> Alcotest.fail "histogram missing"
   | Some s ->
       Alcotest.(check int) "count" 3 s.count;
       Alcotest.(check (float 1e-9)) "sum" 12.0 s.sum;
       Alcotest.(check (float 1e-9)) "min" 2.0 s.min;
       Alcotest.(check (float 1e-9)) "max" 6.0 s.max;
       Alcotest.(check (float 1e-9)) "mean" 4.0 s.mean)
    ()

(* --- Disabled mode ------------------------------------------------------- *)

let test_disabled_noop () =
  Obs.Registry.reset ();
  Obs.Registry.disable ();
  let result = Obs.Span.with_ "ghost" (fun () -> Obs.Counter.incr "ghost.count"; 7) in
  Alcotest.(check int) "with_ still runs the body" 7 result;
  Alcotest.(check int) "no counter recorded" 0 (Obs.Counter.get "ghost.count");
  Alcotest.(check int) "no span recorded" 0 (List.length (Obs.Trace.events ()));
  Alcotest.(check bool) "no histogram recorded" true
    (Obs.Histogram.summary "span.ghost" = None);
  (match try Obs.Span.with_ "ghost2" (fun () -> raise Exit) with Exit -> () with
  | () -> ());
  Alcotest.(check int) "exceptions pass through untouched" 0
    (List.length (Obs.Trace.events ()))

let test_instrumented_paths_silent_when_disabled () =
  Obs.Registry.reset ();
  Obs.Registry.disable ();
  let slif = Lazy.force Helpers.tiny_slif in
  ignore (Slif.Stats.of_slif slif);
  Alcotest.(check int) "estimate counters silent" 0
    (Obs.Counter.get "estimate.memo_miss");
  Alcotest.(check int) "build counters silent" 0 (Obs.Counter.get "build.nodes")

(* --- Exporters ----------------------------------------------------------- *)

let test_trace_export_valid_json () =
  (with_fresh @@ fun () ->
   Obs.Span.with_ "outer" ~args:[ ("spec", "tiny \"quoted\"\n") ] (fun () ->
       Obs.Span.with_ "inner" (fun () -> ()));
   let path = Filename.temp_file "slif_obs" ".trace.json" in
   Obs.Trace.write_file path;
   let json = parse_ok "trace" (read_file path) in
   Sys.remove path;
   match Obs.Json.member "traceEvents" json with
   | Some (Obs.Json.List events) ->
       (* Metadata event plus the two spans. *)
       Alcotest.(check int) "event count" 3 (List.length events);
       List.iter
         (fun ev ->
           Alcotest.(check bool) "every event has a name and ph" true
             (Obs.Json.member "name" ev <> None && Obs.Json.member "ph" ev <> None))
         events
   | _ -> Alcotest.fail "traceEvents missing or not a list")
    ()

let test_metrics_export_valid_json () =
  (with_fresh @@ fun () ->
   Obs.Counter.incr ~by:3 "estimate.memo_hit";
   Obs.Histogram.observe "lat" 1.5;
   let path = Filename.temp_file "slif_obs" ".metrics.json" in
   Obs.Metrics.write_file path;
   let json = parse_ok "metrics" (read_file path) in
   Sys.remove path;
   (match Obs.Json.member "counters" json with
   | Some counters ->
       Alcotest.(check bool) "counter exported" true
         (Obs.Json.member "estimate.memo_hit" counters = Some (Obs.Json.Int 3))
   | None -> Alcotest.fail "counters object missing");
   match Obs.Json.member "histograms" json with
   | Some hists -> (
       match Obs.Json.member "lat" hists with
       | Some h ->
           Alcotest.(check bool) "histogram has a count field" true
             (Obs.Json.member "count" h = Some (Obs.Json.Int 1))
       | None -> Alcotest.fail "lat histogram missing")
   | None -> Alcotest.fail "histograms object missing")
    ()

let test_metrics_jsonl () =
  (with_fresh @@ fun () ->
   Obs.Counter.incr "a";
   Obs.Histogram.observe "b" 2.0;
   let path = Filename.temp_file "slif_obs" ".metrics.jsonl" in
   Obs.Metrics.write_jsonl path;
   let lines =
     read_file path |> String.split_on_char '\n'
     |> List.filter (fun l -> String.trim l <> "")
   in
   Sys.remove path;
   Alcotest.(check int) "one line per metric" 2 (List.length lines);
   List.iter (fun line -> ignore (parse_ok "jsonl line" line)) lines)
    ()

(* --- JSON round-trip ----------------------------------------------------- *)

let test_json_roundtrip () =
  let value =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a\"b\\c\nd\te\r\012 \001");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.25);
        ("big", Obs.Json.Float 1.23456789e18);
        ("t", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ]);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string value) with
  | Ok round -> Alcotest.(check bool) "round-trips" true (round = value)
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg

let test_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Obs.Json.parse text with
      | Ok _ -> Alcotest.failf "parser accepted %S" text
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_nonfinite_floats_print_null () =
  let text = Obs.Json.to_string (Obs.Json.List [ Obs.Json.Float nan; Obs.Json.Float infinity ]) in
  Alcotest.(check string) "nan/inf become null" "[null,null]" text

(* --- Clock --------------------------------------------------------------- *)

let test_clock_monotonic () =
  let t0 = Obs.Clock.now_ns () in
  let t1 = Obs.Clock.now_ns () in
  Alcotest.(check bool) "clock never goes backwards" true (Int64.compare t1 t0 >= 0);
  let (), s = Obs.Clock.time (fun () -> ignore (Sys.opaque_identity (List.init 100 Fun.id))) in
  Alcotest.(check bool) "elapsed seconds non-negative" true (s >= 0.0)

let test_clock_time_helpers () =
  let x, s = Obs.Clock.time (fun () -> 3 + 4) in
  Alcotest.(check int) "result threaded through" 7 x;
  Alcotest.(check bool) "duration non-negative" true (s >= 0.0);
  let avg = Obs.Clock.time_n 3 (fun () -> ()) in
  Alcotest.(check bool) "average non-negative" true (avg >= 0.0);
  Alcotest.check_raises "time_n rejects n <= 0" (Invalid_argument "Clock.time_n")
    (fun () -> ignore (Obs.Clock.time_n 0 (fun () -> ())))

(* --- Instrumented pipeline ----------------------------------------------- *)

let test_pipeline_counters_fire () =
  (with_fresh @@ fun () ->
   let sem = Vhdl.Sem.build (Vhdl.Parser.parse Helpers.tiny_source) in
   let slif = Slif.Annotate.run ~techs:Tech.Parts.all sem (Slif.Build.build sem) in
   Alcotest.(check bool) "build.nodes counted" true (Obs.Counter.get "build.nodes" > 0);
   Alcotest.(check bool) "parse span recorded" true
     (List.exists
        (fun (e : Obs.Trace.event) -> e.name = "vhdl.parse")
        (Obs.Trace.events ()));
   let s = Helpers.proc_asic_components slif in
   let graph = Slif.Graph.make s in
   let part = Specsyn.Search.seed_partition s in
   let est = Specsyn.Search.estimator graph part in
   Array.iter
     (fun (n : Slif.Types.node) ->
       if Slif.Types.is_process n then ignore (Slif.Estimate.exectime_us est n.n_id))
     s.Slif.Types.nodes;
   Alcotest.(check bool) "memo misses counted" true
     (Obs.Counter.get "estimate.memo_miss" > 0))
    ()

let test_event_cap () =
  (with_fresh @@ fun () ->
   Obs.Registry.set_max_events 3;
   Fun.protect
     ~finally:(fun () -> Obs.Registry.set_max_events 200_000)
     (fun () ->
       for _ = 1 to 5 do
         Obs.Span.with_ "spam" (fun () -> ())
       done;
       Alcotest.(check int) "buffer capped" 3 (List.length (Obs.Trace.events ()));
       Alcotest.(check int) "drops counted" 2 (Obs.Registry.dropped_events ())))
    ()

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
    Alcotest.test_case "span feeds duration histogram" `Quick test_span_histogram;
    Alcotest.test_case "counter aggregation across phases" `Quick test_counter_aggregation;
    Alcotest.test_case "histogram statistics" `Quick test_histogram_stats;
    Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "instrumented paths silent when disabled" `Quick
      test_instrumented_paths_silent_when_disabled;
    Alcotest.test_case "trace export is valid JSON" `Quick test_trace_export_valid_json;
    Alcotest.test_case "metrics export is valid JSON" `Quick test_metrics_export_valid_json;
    Alcotest.test_case "metrics JSONL export" `Quick test_metrics_jsonl;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "non-finite floats print as null" `Quick
      test_nonfinite_floats_print_null;
    Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
    Alcotest.test_case "clock time helpers" `Quick test_clock_time_helpers;
    Alcotest.test_case "pipeline counters fire when enabled" `Quick
      test_pipeline_counters_fire;
    Alcotest.test_case "span buffer cap" `Quick test_event_cap;
  ]
